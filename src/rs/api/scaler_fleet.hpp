/// \file scaler_fleet.hpp
/// \brief Multi-tenant serving front end: one process hosting many named
///        per-service Scalers behind a shared Observe/Plan interface.
///
///   rs::api::ScalerFleet fleet(/*worker_threads=*/4);
///   fleet.Register("search", std::move(*search_scaler));
///   fleet.Register("checkout", std::move(*checkout_scaler));
///   fleet.Observe("search", arrival_time);
///   for (const auto& plan : fleet.PlanAll(now)) {
///     // plan.tenant, plan.status, plan.action — registration order.
///   }
///
/// Planning batches across tenants on a small internal worker pool; tenant
/// state is partitioned (each tenant is touched by exactly one worker per
/// batch, joined before PlanAll returns), so the fleet gives a hard parity
/// guarantee: for any trace interleaving and any thread count, each
/// tenant's action sequence is byte-identical to the one an independent,
/// sequentially-driven Scaler produces (asserted for random interleavings
/// under 1/2/8 workers in tests/property_test.cpp, race-checked by the
/// TSan CI job).
///
/// Thread model: the fleet parallelizes *internally*. Its public methods
/// must be called from one caller thread at a time (like Scaler itself) —
/// a production server front end serializes per-process fleet access and
/// lets PlanAll fan the heavy per-tenant planning out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rs/api/scaler.hpp"
#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/timeseries/drift.hpp"
#include "rs/train/training_session.hpp"

namespace rs::api {

class ServingTap;
struct TapClockMark;

/// Degradation state of one tenant (see docs/ARCHITECTURE.md, "Graceful
/// degradation"): HEALTHY serves normally; DEGRADED has recent plan
/// failures and is serving last-good fallback at failed boundaries;
/// QUARANTINED has a tripped circuit breaker — the tenant's scaler is not
/// planned at all until a backoff-timed half-open probe succeeds.
enum class TenantHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
};

/// "healthy" / "degraded" / "quarantined" (for logs and the inspector).
const char* TenantHealthToString(TenantHealth health);

/// \brief Per-tenant degradation policy (ScalerFleet::ConfigureRobustness).
///
/// The defaults are faults-off no-ops: with no injected faults the only
/// plan failure mode is a caller bug (regressive clock → kInvalidArgument),
/// which propagates as an error and never feeds the breaker, so a fleet
/// that never fails behaves — byte for byte — as if this machinery did not
/// exist.
struct RobustnessPolicy {
  /// Consecutive non-Invalid plan failures that trip the breaker
  /// (HEALTHY/DEGRADED → QUARANTINED).
  std::size_t breaker_threshold = 3;
  /// Quarantine backoff: the k-th consecutive open waits
  /// min(backoff_max, backoff_base * 2^(k-1)) serving seconds, stretched
  /// by a deterministic per-tenant jitter in [0, backoff_jitter] so a
  /// correlated failure does not un-quarantine the whole fleet at one
  /// boundary (thundering-herd probes).
  double backoff_base = 60.0;
  double backoff_max = 3600.0;
  double backoff_jitter = 0.1;
  /// Seed of the per-tenant jitter streams (mixed with the tenant name, so
  /// replay across worker counts and fleet rebuilds is deterministic).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Wall-clock budget for one tenant's share of a plan boundary; an
  /// overrun discards the (late) action and serves fallback instead. This
  /// is the one knob that is *not* deterministic — it reads the machine
  /// clock — so it defaults to off (infinity) and parity tests leave it
  /// there.
  double plan_deadline = std::numeric_limits<double>::infinity();
  /// Backoff between failed background retrains of one tenant, in serving
  /// seconds: min(retrain_backoff_max, retrain_backoff_base * 2^(k-1))
  /// after the k-th consecutive failure. 0 retries at the next eligible
  /// boundary (the pre-existing behavior).
  double retrain_backoff_base = 0.0;
  double retrain_backoff_max = 3600.0;
};

/// Public view of one tenant's degradation state (ScalerFleet::Health).
struct TenantHealthInfo {
  TenantHealth health = TenantHealth::kHealthy;
  std::uint64_t consecutive_plan_failures = 0;
  std::uint64_t plan_failures = 0;       ///< Lifetime failed plan boundaries.
  std::uint64_t fallbacks_served = 0;    ///< Boundaries served by fallback.
  std::uint64_t rejected_observations = 0;  ///< Bad Observe inputs refused.
  std::uint64_t breaker_opens = 0;       ///< Lifetime breaker trips.
  std::uint64_t probes = 0;              ///< Half-open probes attempted.
  std::uint64_t deadline_overruns = 0;   ///< Plans discarded for lateness.
  std::uint64_t consecutive_retrain_failures = 0;
  std::uint64_t freshness_errors = 0;    ///< Session bookkeeping failures.
  /// Serving time the quarantine backoff expires (-inf when not
  /// quarantined).
  double retry_at = -std::numeric_limits<double>::infinity();
  /// Serving time the retrain backoff expires (-inf when none pending).
  double retrain_retry_at = -std::numeric_limits<double>::infinity();
  Status last_error;  ///< Most recent plan/observe/retrain failure.
};

/// Aggregated view of every tenant's serving state. The sums follow
/// ServingSnapshot's retained-vs-total split: `queries_observed` /
/// `planning_rounds` count lifetime totals while `arrivals_retained` /
/// `actions_retained` count what is actually held in memory, so the fleet
/// exposes one number for "how much serving state would a snapshot/restore
/// have to persist" (the ROADMAP distributed-state item keys on this).
struct FleetSnapshot {
  std::size_t tenants = 0;
  std::size_t tenants_started = 0;  ///< Tenants with serving traffic so far.

  // -- Lifetime totals, summed across tenants -------------------------------
  std::size_t queries_observed = 0;
  std::size_t instances_alive = 0;
  std::size_t instances_ready = 0;
  std::size_t scheduled_creations = 0;
  std::size_t cold_starts = 0;
  std::size_t creations_requested = 0;
  std::size_t deletions_requested = 0;
  std::size_t planning_rounds = 0;

  // -- Retained state (memory actually held), summed across tenants ---------
  std::size_t arrivals_retained = 0;
  std::size_t actions_retained = 0;
  /// Planning-workspace bytes retained across tenants (Monte Carlo buffers,
  /// decision kernels). Workspaces shrink-to-fit when a tenant's R drops,
  /// so retiring or downsizing large tenants releases this memory.
  std::size_t planning_workspace_bytes = 0;

  // -- Degradation health, aggregated across tenants ------------------------
  std::size_t tenants_healthy = 0;
  std::size_t tenants_degraded = 0;
  std::size_t tenants_quarantined = 0;
  std::uint64_t rejected_observations = 0;
  std::uint64_t plan_failures = 0;
  std::uint64_t fallbacks_served = 0;
  std::uint64_t breaker_opens = 0;

  /// Per-tenant snapshots in registration order.
  std::vector<std::pair<std::string, ServingSnapshot>> per_tenant;
  /// Per-tenant health in the same (registration) order as `per_tenant`.
  std::vector<std::pair<std::string, TenantHealthInfo>> per_tenant_health;
};

/// Per-tenant restore knobs (ScalerFleet::RestoreTenant / MigrateTenant).
struct TenantRestoreOptions {
  /// Register the restored tenant under this name instead of the one in
  /// the snapshot (empty keeps the snapshot's name). Lets a migration land
  /// next to an existing tenant without a collision.
  std::string rename;
  /// Replacement decision clock for a tenant whose snapshot was taken with
  /// an injected DecisionClock (required then; see
  /// ScalerRestoreOptions::decision_clock).
  sim::DecisionClock* decision_clock = nullptr;
};

/// Fleet-wide restore knobs (ScalerFleet::LoadFleet).
struct FleetRestoreOptions {
  /// Worker-pool size for the restored fleet (same meaning as the
  /// ScalerFleet constructor argument).
  std::size_t worker_threads = 0;
  /// Optional per-tenant decision-clock factory, consulted for tenants
  /// whose snapshot carried an injected clock. Returning nullptr for such a
  /// tenant fails that tenant's restore.
  std::function<sim::DecisionClock*(const std::string& tenant)>
      decision_clock_for;
};

/// \brief How a fleet keeps tenants' models fresh (ScalerFleet::
///        EnableFreshness): drift detection on the served arrival stream,
///        warm-start background retraining, tear-free hot swap.
struct FreshnessPolicy {
  /// Pipeline configuration of background refits (β weights, ADMM knobs,
  /// forecast horizon of the replacement model; `dt` is the bin width of a
  /// tenant whose trained pipeline carries no counts — tenants trained in
  /// this process refit at their trained bin width).
  core::PipelineOptions pipeline;
  /// Drift-detector knobs, shared across tenants. Per-tenant geometry —
  /// bin width, expected rates, detected period — comes from each tenant's
  /// trained model, not from here.
  ts::DriftDetectorOptions detector;
  /// Rate limit: at least this much serving time between retrain attempts
  /// of one tenant (0 = every planning boundary may enqueue).
  double min_retrain_interval = 0.0;
  /// Threads of the dedicated retrain pool — NOT the planning pool, so
  /// retrains never contend with Plan(t). 0 fits inline at the enqueue
  /// point: fully deterministic, which is what the parity tests pin.
  std::size_t retrain_workers = 0;
};

/// Per-tenant freshness status (ScalerFleet::Freshness). Times are fleet
/// serving times.
struct TenantFreshness {
  bool enabled = false;
  ts::DriftKind drift = ts::DriftKind::kNone;  ///< Currently latched drift.
  double drift_time = 0.0;   ///< When the current drift latched.
  bool retrain_inflight = false;
  std::size_t drift_events = 0;  ///< Lifetime drift latches.
  std::size_t retrains_completed = 0;
  std::size_t retrain_failures = 0;
  std::size_t swaps_applied = 0;
  double last_swap_time = 0.0;  ///< Plan boundary of the last model swap.
  /// Serving time the live model's forecast starts at (0 until the first
  /// background swap; grows to the end of each refit window after).
  double model_origin = 0.0;
  /// End of the training window accumulated for the next refit.
  double window_end = 0.0;
};

/// \brief Owns N named Scaler instances and serves them behind one front
///        end, batching planning across tenants on a worker pool.
///
/// The pool is shared at both grains: PlanAll fans tenants out over it, and
/// each tenant's strategy shards its own Monte Carlo rounds into the same
/// work queue (no nested pools — ParallelFor's caller participation makes
/// the nesting deadlock-free). A 1-tenant fleet on a 16-thread pool and a
/// 16-tenant fleet on the same pool therefore both saturate it.
class ScalerFleet {
 public:
  /// `worker_threads` sizes the internal planning pool; 0 plans inline on
  /// the calling thread (the deterministic baseline — higher counts must
  /// produce byte-identical actions, they only change wall time).
  explicit ScalerFleet(std::size_t worker_threads = 0);

  ScalerFleet(ScalerFleet&&) noexcept;
  ScalerFleet& operator=(ScalerFleet&&) noexcept;
  ~ScalerFleet();

  // -- Tenant lifecycle -----------------------------------------------------
  //
  // Lifecycle operations never disturb other tenants: registration order
  // (the deterministic PlanAll output order) is preserved for everyone
  // else, and no other tenant's serving state is touched.

  /// Adds a tenant under a unique non-empty name. The scaler should be
  /// freshly built (its serving state starts with the first Observe/Plan).
  Status Register(std::string tenant, Scaler scaler);

  /// Removes a tenant and its serving state.
  Status Retire(const std::string& tenant);

  /// Swaps in a newly trained scaler for an existing tenant (model
  /// refresh), keeping the tenant's name and registration position. The
  /// replacement starts serving from a fresh mirror, but the retiring
  /// tenant's serving configuration is carried over: a
  /// ConfigureHistoryRetention widening and the decision-clock position
  /// (when the replacement's clock accepts one) survive the swap instead of
  /// silently resetting.
  Status ReplaceModel(const std::string& tenant, Scaler scaler);

  /// Like ReplaceModel, but the swap is deferred to the tenant's next plan
  /// boundary (its next Plan/PlanAll call): the in-flight plan is never
  /// torn. Before the boundary the tenant's actions are byte-identical to
  /// an unswapped control; from the boundary on they are byte-identical to
  /// a fresh-model control. A second call before the boundary replaces the
  /// still-pending scaler.
  Status ReplaceModelAtNextPlan(const std::string& tenant, Scaler scaler);

  std::size_t size() const { return tenants_.size(); }

  /// Tenant names in registration order.
  std::vector<std::string> Tenants() const;

  /// Direct access to a tenant's Scaler (nullptr if unknown) for
  /// per-tenant configuration — ConfigureServing, history retention,
  /// ActionLog inspection. Do not drive Observe/Plan through this pointer
  /// while also serving through the fleet.
  Scaler* Find(const std::string& tenant);
  const Scaler* Find(const std::string& tenant) const;

  /// Applies one serving-time engine configuration to every tenant
  /// (per-tenant ConfigureServing via Find() overrides individually).
  /// First error aborts the sweep and is returned.
  Status ConfigureServingAll(const sim::EngineOptions& options);

  /// \brief Toggles intra-plan Monte Carlo sharding (default on): whether
  ///        tenant strategies feed their per-plan shards into the fleet's
  ///        own worker pool.
  ///
  /// Off restores tenant-level-only batching (each Plan runs serially on
  /// its worker). Either setting emits byte-identical actions — this only
  /// moves where the wall time goes, e.g. benchmarking the two grains
  /// against each other (bench_fleet_scaling --plan-workers).
  void SetIntraPlanSharding(bool enabled);

  // -- Model freshness ------------------------------------------------------
  //
  // With a FreshnessPolicy enabled, every tenant gets a streaming
  // DriftDetector fed from its Observe stream and a warm-start
  // TrainingSession accumulating the same arrivals. When the detector
  // latches, a retrain job is enqueued on the dedicated retrain pool
  // (ordinary pool task, fully off the planning path); the finished model
  // is swapped in at the tenant's next plan boundary with the full
  // ReplaceModel carry (retention widening, decision-clock position,
  // serving configuration). Swap semantics are tear-free by construction:
  // the swap happens only between plans, never inside one, so each
  // tenant's action stream is byte-identical to an unswapped control up to
  // the boundary and to a fresh-model control after it — under any fleet
  // worker count and both RS_REFERENCE_KERNELS modes
  // (tests/freshness_test.cpp pins this).
  //
  // After a swap the tenant's plans are served by the refit model, whose
  // forecast starts at the end of the refit window. The fleet rebases
  // times internally: callers keep passing the same monotone serving
  // clock to Observe/Plan, and returned creation times stay on that clock.

  /// Enables the freshness loop for all current and future tenants.
  /// Call again to replace the policy (in-flight retrain results of the
  /// old policy are still swapped in).
  Status EnableFreshness(const FreshnessPolicy& policy);

  bool freshness_enabled() const { return policy_.has_value(); }

  /// One tenant's freshness status.
  Result<TenantFreshness> Freshness(const std::string& tenant) const;

  /// Enqueues a retrain for `tenant` now, drift or not (subject to one
  /// in-flight job per tenant; not rate-limited). The result swaps in at
  /// the tenant's next plan boundary like any drift-triggered retrain.
  Status RequestRetrain(const std::string& tenant);

  // -- Serving tap (rs::trace capture hook) ----------------------------------

  /// \brief Attaches an observer that sees every successful serving-facing
  ///        operation from here on (see ServingTap for the callback
  ///        contract). One tap at a time; must outlive its attachment.
  ///
  /// Mutually exclusive with the freshness loop: background retrains land
  /// at wall-time-dependent moments no event stream could re-drive, so a
  /// tap on a freshness-enabled fleet (or EnableFreshness under a tap)
  /// fails with Invalid. Attaching does not replay the past — a recorder
  /// that wants already-registered tenants snapshots them itself
  /// (rs::trace::Recorder::Attach does).
  Status AttachTap(ServingTap* tap);

  /// Detaches the current tap (no-op when none is attached).
  void DetachTap();

  ServingTap* tap() const { return tap_; }

  // -- Graceful degradation -------------------------------------------------
  //
  // Every tenant carries a health state machine (HEALTHY → DEGRADED →
  // QUARANTINED → probed back to HEALTHY). A plan boundary that fails with
  // anything but kInvalidArgument — an injected fault, a thrown exception,
  // a deadline overrun — is served by *fallback*: the tenant's last-good
  // plan stays in effect (the boundary returns OK with an empty action and
  // `degraded = true`), the failure is counted, and after
  // `breaker_threshold` consecutive failures the breaker opens: the
  // tenant's scaler is skipped entirely until a jittered exponential
  // backoff expires and a half-open probe plan succeeds. Invalid inputs
  // (regressive clocks, non-finite times) are caller bugs and still
  // propagate as errors — they never trip the breaker, which keeps
  // faults-off fleets byte-identical to a fleet without this machinery.
  // All breaker bookkeeping runs on the caller thread in registration
  // order, so the state machine is deterministic under any worker count.

  /// Replaces the degradation policy (re-seeds the per-tenant jitter
  /// streams from `policy.jitter_seed`). Not persisted by SaveFleet —
  /// like worker_threads, it is runtime configuration the operator
  /// re-applies after LoadFleet.
  void ConfigureRobustness(const RobustnessPolicy& policy);

  const RobustnessPolicy& robustness() const { return robustness_; }

  /// One tenant's degradation state and counters.
  Result<TenantHealthInfo> Health(const std::string& tenant) const;

  // -- Serving --------------------------------------------------------------

  /// Reports one arrival for `tenant` (its own serving clock; clocks are
  /// per-tenant and independent). Malformed arrivals — NaN, ±inf,
  /// regressive times — are rejected with kInvalidArgument *before* the
  /// serving mirror is touched (counted in Health().rejected_observations);
  /// one bad input can never poison a tenant's planning state.
  Result<Scaler::ObserveOutcome> Observe(const std::string& tenant,
                                         double arrival_time);

  /// Advances one tenant's planning to `now` and drains its actions.
  /// Subject to the same degradation machinery as PlanAll: a failed
  /// boundary returns OK with an empty action (fallback; see Health()).
  Result<sim::ScalingAction> Plan(const std::string& tenant, double now);

  /// One tenant's share of a PlanAll batch.
  struct TenantPlan {
    std::string tenant;
    Status status;              ///< Per-tenant; one failure stops no one else.
    sim::ScalingAction action;  ///< Empty unless status.ok().
    /// True when this boundary was served by fallback (the underlying plan
    /// failed or the breaker is open; the last-good plan stays in effect).
    bool degraded = false;
  };

  /// Advances every tenant's planning to `now` across the worker pool and
  /// returns the drained actions in registration order (deterministic
  /// regardless of worker scheduling). Each tenant fails or succeeds
  /// independently — a tenant whose serving clock is already past `now`
  /// reports its own Invalid status while the rest of the fleet planning
  /// proceeds.
  std::vector<TenantPlan> PlanAll(double now);

  /// Aggregated serving state across all tenants.
  FleetSnapshot Snapshot() const;

  // -- Durability & migration (rs::persist) ---------------------------------
  //
  // A tenant snapshot is one self-contained rs::persist container (magic,
  // versioned sections, CRC32 trailer) holding the tenant's name plus its
  // Scaler's full durable state — see Scaler::SaveState for the continuation
  // guarantee. A fleet snapshot is the same records for every tenant, in
  // registration order.

  /// Writes one tenant's durable state (name + Scaler record) to `out`.
  Status SnapshotTenant(const std::string& tenant, std::ostream& out) const;

  /// Reads one tenant snapshot from `in` and registers it (at the end of
  /// the registration order, like any new Register). The restored scaler's
  /// planning shards feed this fleet's pool. On any error the fleet is
  /// unchanged.
  Status RestoreTenant(std::istream& in,
                       const TenantRestoreOptions& options = {});

  /// Writes every tenant's durable state, in registration order.
  Status SaveFleet(std::ostream& out) const;

  /// SaveFleet to a file, crash-safely: the snapshot is encoded in memory,
  /// written to `path + ".tmp"`, and renamed over `path`
  /// (persist::AtomicWriteFile, with retry) — a failure leaves the
  /// previous snapshot at `path` intact, never a torn file.
  Status SaveFleetToFile(const std::string& path) const;

  /// Rebuilds a whole fleet from a SaveFleet stream; tenants come back in
  /// their original registration order.
  static Result<ScalerFleet> LoadFleet(std::istream& in,
                                       const FleetRestoreOptions& options = {});

  /// LoadFleet from a file written by SaveFleetToFile (or any SaveFleet
  /// bytes on disk).
  static Result<ScalerFleet> LoadFleetFromFile(
      const std::string& path, const FleetRestoreOptions& options = {});

  /// Section-level codec, for embedding the fleet record in larger
  /// containers (the rs::wal checkpoint ties one to a journal LSN).
  /// SaveFleetSection writes the FLET section into an open writer;
  /// LoadFleetSection decodes one from an open reader positioned at it.
  Status SaveFleetSection(persist::Writer* writer) const;
  static Result<ScalerFleet> LoadFleetSection(
      persist::Reader* reader, const FleetRestoreOptions& options = {});

  /// \brief Moves one tenant to another live fleet: snapshot → restore into
  ///        `target` → retire here. The tenant's action sequence continues
  ///        byte-identically across the cut (same guarantee as
  ///        Scaler::SaveState). Succeeds or leaves *both* fleets unchanged —
  ///        the source keeps the tenant whenever the restore into `target`
  ///        fails (e.g. a name collision without `options.rename`).
  Status MigrateTenant(const std::string& tenant, ScalerFleet* target,
                       const TenantRestoreOptions& options = {});

 private:
  /// Output slot of one background retrain (shared with the pool task; the
  /// mutex publishes the result to the swap boundary's reader).
  struct RetrainJob;
  /// Per-tenant freshness state: detector, live training session, time
  /// rebase, counters, the in-flight job, a pending deferred replacement.
  struct FreshState;

  /// The full (private) per-tenant degradation record; TenantHealthInfo is
  /// its public projection. Mutated only on the caller thread (BreakerGate
  /// before the fan-out, NotePlanOutcome after the join) except for
  /// deadline_overruns, which the owning worker bumps — per-tenant safe.
  struct HealthState {
    TenantHealth health = TenantHealth::kHealthy;
    std::uint64_t consecutive_plan_failures = 0;
    std::uint64_t plan_failures = 0;
    std::uint64_t fallbacks_served = 0;
    std::uint64_t rejected_observations = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t probes = 0;
    std::uint64_t deadline_overruns = 0;
    std::uint64_t consecutive_retrain_failures = 0;
    /// Consecutive breaker opens without an intervening success (drives the
    /// exponential backoff).
    std::uint64_t open_count = 0;
    std::uint64_t freshness_errors = 0;
    double retry_at = -std::numeric_limits<double>::infinity();
    double retrain_retry_at = -std::numeric_limits<double>::infinity();
    /// Per-tenant SplitMix64 stream for backoff jitter (seeded from
    /// RobustnessPolicy::jitter_seed mixed with the tenant name).
    std::uint64_t jitter_rng = 0;
    /// A half-open probe is in flight this boundary: its outcome decides
    /// recovery vs. re-open.
    bool probe_inflight = false;
    Status last_error;
  };

  struct Tenant {
    std::string name;
    Scaler scaler;
    std::unique_ptr<FreshState> fresh;  ///< Null until freshness attaches.
    HealthState health;
    // Out of line: FreshState is complete only in scaler_fleet.cpp.
    Tenant(std::string n, Scaler s);
    ~Tenant();
  };

  /// Index into tenants_, or tenants_.size() if unknown.
  std::size_t FindIndex(const std::string& tenant) const;

  /// Appends a fully-formed tenant (Register and the restore paths share
  /// this): validates the name, indexes it, points its planning shards at
  /// the fleet pool, and attaches/rebinds freshness state per the policy.
  Status RegisterTenant(std::unique_ptr<Tenant> tenant);

  /// (Re)builds `tenant`'s freshness loop state from its current trained
  /// model, with the detector resuming at the first forecast bin boundary
  /// at or after serving time `now`. Preserves counters and any pending
  /// deferred replacement already in the state.
  Status AttachFreshness(Tenant* tenant, double now);

  /// The caller-thread pre-plan pass for tenant `i` at boundary `now`:
  /// apply a finished swap, advance the detector through the silent gap,
  /// and enqueue a retrain if drift latched (in that order).
  void FreshnessPrePlan(std::size_t i, double now);
  void MaybeApplySwap(std::size_t i, double now);
  void MaybeEnqueueRetrain(std::size_t i, double now, bool forced);

  // The plan-boundary degradation machinery, split so PlanAll stays
  // deterministic: BreakerGate runs on the caller thread *before* the
  // fan-out (returns true when quarantine says skip planning — `plan` is
  // then already the fallback answer), PlanTenant is the worker-side body
  // (fault point, the actual scaler plan, exception → Status, deadline),
  // and NotePlanOutcome runs on the caller thread *after* the join, in
  // registration order, doing all breaker/counter bookkeeping and turning
  // failures into fallback answers.
  bool BreakerGate(std::size_t i, double now, TenantPlan* plan);
  void PlanTenant(std::size_t i, double now, TenantPlan* plan);
  void NotePlanOutcome(std::size_t i, double now, TenantPlan* plan);

  /// Installs `replacement` for tenant `i` with the ReplaceModel carry and
  /// rebases the tenant's serving clock to `new_base`; `now` stamps the
  /// swap counters. `reset_session` restarts the freshness loop from the
  /// replacement's own trained pipeline (manual swaps) instead of keeping
  /// the accumulated session (background swaps, which already adopted the
  /// fit).
  Status InstallReplacement(std::size_t i, Scaler replacement,
                            double new_base, double now, bool reset_session);

  /// The ReplaceModel carry: retention widening + decision-clock position
  /// from the retiring scaler onto its replacement.
  static void CarryServingConfig(const Scaler& retiring, Scaler* replacement);

  /// The tenant's decision-clock position for tap callbacks (steady clocks
  /// have none; deterministic clocks export time + reading count).
  static TapClockMark TapMark(const Scaler& scaler);

  /// Writes one TENT record (name + Scaler state + freshness state) into
  /// an open writer.
  Status WriteTenantRecord(persist::Writer* writer, std::size_t index) const;

  /// Reads one TENT record. `clock_for` maps the snapshot's tenant name to
  /// the replacement decision clock (may yield nullptr — then a snapshot
  /// that needs one fails cleanly inside the Scaler restore). A trailing
  /// freshness section, when present, is decoded against `policy` (null
  /// falls back to default detector/session knobs — the statistic state
  /// itself is policy-independent).
  static Result<std::unique_ptr<Tenant>> ReadTenantRecord(
      persist::Reader* reader,
      const std::function<sim::DecisionClock*(const std::string&)>& clock_for,
      const FreshnessPolicy* policy);

  /// Registration order; unique_ptr keeps tenant addresses stable across
  /// vector reshuffles, so worker tasks and Find() pointers stay valid.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  /// Name → tenants_ index: Observe() routes every arrival through this,
  /// so lookup must not scale with fleet size.
  std::unordered_map<std::string, std::size_t> index_;
  std::unique_ptr<common::ThreadPool> pool_;
  bool intra_plan_sharding_ = true;
  RobustnessPolicy robustness_;
  std::optional<FreshnessPolicy> policy_;
  /// Dedicated retrain pool (policy_.retrain_workers threads); planning
  /// never waits on it.
  std::unique_ptr<common::ThreadPool> retrain_pool_;
  /// Attached serving observer (AttachTap), or null. Not owned.
  ServingTap* tap_ = nullptr;
};

}  // namespace rs::api
