/// \file scaler_fleet.hpp
/// \brief Multi-tenant serving front end: one process hosting many named
///        per-service Scalers behind a shared Observe/Plan interface.
///
///   rs::api::ScalerFleet fleet(/*worker_threads=*/4);
///   fleet.Register("search", std::move(*search_scaler));
///   fleet.Register("checkout", std::move(*checkout_scaler));
///   fleet.Observe("search", arrival_time);
///   for (const auto& plan : fleet.PlanAll(now)) {
///     // plan.tenant, plan.status, plan.action — registration order.
///   }
///
/// Planning batches across tenants on a small internal worker pool; tenant
/// state is partitioned (each tenant is touched by exactly one worker per
/// batch, joined before PlanAll returns), so the fleet gives a hard parity
/// guarantee: for any trace interleaving and any thread count, each
/// tenant's action sequence is byte-identical to the one an independent,
/// sequentially-driven Scaler produces (asserted for random interleavings
/// under 1/2/8 workers in tests/property_test.cpp, race-checked by the
/// TSan CI job).
///
/// Thread model: the fleet parallelizes *internally*. Its public methods
/// must be called from one caller thread at a time (like Scaler itself) —
/// a production server front end serializes per-process fleet access and
/// lets PlanAll fan the heavy per-tenant planning out.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rs/api/scaler.hpp"
#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/simulator/engine.hpp"

namespace rs::api {

/// Aggregated view of every tenant's serving state. The sums follow
/// ServingSnapshot's retained-vs-total split: `queries_observed` /
/// `planning_rounds` count lifetime totals while `arrivals_retained` /
/// `actions_retained` count what is actually held in memory, so the fleet
/// exposes one number for "how much serving state would a snapshot/restore
/// have to persist" (the ROADMAP distributed-state item keys on this).
struct FleetSnapshot {
  std::size_t tenants = 0;
  std::size_t tenants_started = 0;  ///< Tenants with serving traffic so far.

  // -- Lifetime totals, summed across tenants -------------------------------
  std::size_t queries_observed = 0;
  std::size_t instances_alive = 0;
  std::size_t instances_ready = 0;
  std::size_t scheduled_creations = 0;
  std::size_t cold_starts = 0;
  std::size_t creations_requested = 0;
  std::size_t deletions_requested = 0;
  std::size_t planning_rounds = 0;

  // -- Retained state (memory actually held), summed across tenants ---------
  std::size_t arrivals_retained = 0;
  std::size_t actions_retained = 0;
  /// Planning-workspace bytes retained across tenants (Monte Carlo buffers,
  /// decision kernels). Workspaces shrink-to-fit when a tenant's R drops,
  /// so retiring or downsizing large tenants releases this memory.
  std::size_t planning_workspace_bytes = 0;

  /// Per-tenant snapshots in registration order.
  std::vector<std::pair<std::string, ServingSnapshot>> per_tenant;
};

/// Per-tenant restore knobs (ScalerFleet::RestoreTenant / MigrateTenant).
struct TenantRestoreOptions {
  /// Register the restored tenant under this name instead of the one in
  /// the snapshot (empty keeps the snapshot's name). Lets a migration land
  /// next to an existing tenant without a collision.
  std::string rename;
  /// Replacement decision clock for a tenant whose snapshot was taken with
  /// an injected DecisionClock (required then; see
  /// ScalerRestoreOptions::decision_clock).
  sim::DecisionClock* decision_clock = nullptr;
};

/// Fleet-wide restore knobs (ScalerFleet::LoadFleet).
struct FleetRestoreOptions {
  /// Worker-pool size for the restored fleet (same meaning as the
  /// ScalerFleet constructor argument).
  std::size_t worker_threads = 0;
  /// Optional per-tenant decision-clock factory, consulted for tenants
  /// whose snapshot carried an injected clock. Returning nullptr for such a
  /// tenant fails that tenant's restore.
  std::function<sim::DecisionClock*(const std::string& tenant)>
      decision_clock_for;
};

/// \brief Owns N named Scaler instances and serves them behind one front
///        end, batching planning across tenants on a worker pool.
///
/// The pool is shared at both grains: PlanAll fans tenants out over it, and
/// each tenant's strategy shards its own Monte Carlo rounds into the same
/// work queue (no nested pools — ParallelFor's caller participation makes
/// the nesting deadlock-free). A 1-tenant fleet on a 16-thread pool and a
/// 16-tenant fleet on the same pool therefore both saturate it.
class ScalerFleet {
 public:
  /// `worker_threads` sizes the internal planning pool; 0 plans inline on
  /// the calling thread (the deterministic baseline — higher counts must
  /// produce byte-identical actions, they only change wall time).
  explicit ScalerFleet(std::size_t worker_threads = 0);

  ScalerFleet(ScalerFleet&&) noexcept;
  ScalerFleet& operator=(ScalerFleet&&) noexcept;
  ~ScalerFleet();

  // -- Tenant lifecycle -----------------------------------------------------
  //
  // Lifecycle operations never disturb other tenants: registration order
  // (the deterministic PlanAll output order) is preserved for everyone
  // else, and no other tenant's serving state is touched.

  /// Adds a tenant under a unique non-empty name. The scaler should be
  /// freshly built (its serving state starts with the first Observe/Plan).
  Status Register(std::string tenant, Scaler scaler);

  /// Removes a tenant and its serving state.
  Status Retire(const std::string& tenant);

  /// Swaps in a newly trained scaler for an existing tenant (model
  /// refresh), keeping the tenant's name and registration position. The
  /// replacement starts serving from a fresh state — the old model's
  /// mirror is discarded with it.
  Status ReplaceModel(const std::string& tenant, Scaler scaler);

  std::size_t size() const { return tenants_.size(); }

  /// Tenant names in registration order.
  std::vector<std::string> Tenants() const;

  /// Direct access to a tenant's Scaler (nullptr if unknown) for
  /// per-tenant configuration — ConfigureServing, history retention,
  /// ActionLog inspection. Do not drive Observe/Plan through this pointer
  /// while also serving through the fleet.
  Scaler* Find(const std::string& tenant);
  const Scaler* Find(const std::string& tenant) const;

  /// Applies one serving-time engine configuration to every tenant
  /// (per-tenant ConfigureServing via Find() overrides individually).
  /// First error aborts the sweep and is returned.
  Status ConfigureServingAll(const sim::EngineOptions& options);

  /// \brief Toggles intra-plan Monte Carlo sharding (default on): whether
  ///        tenant strategies feed their per-plan shards into the fleet's
  ///        own worker pool.
  ///
  /// Off restores tenant-level-only batching (each Plan runs serially on
  /// its worker). Either setting emits byte-identical actions — this only
  /// moves where the wall time goes, e.g. benchmarking the two grains
  /// against each other (bench_fleet_scaling --plan-workers).
  void SetIntraPlanSharding(bool enabled);

  // -- Serving --------------------------------------------------------------

  /// Reports one arrival for `tenant` (its own serving clock; clocks are
  /// per-tenant and independent).
  Result<Scaler::ObserveOutcome> Observe(const std::string& tenant,
                                         double arrival_time);

  /// Advances one tenant's planning to `now` and drains its actions.
  Result<sim::ScalingAction> Plan(const std::string& tenant, double now);

  /// One tenant's share of a PlanAll batch.
  struct TenantPlan {
    std::string tenant;
    Status status;              ///< Per-tenant; one failure stops no one else.
    sim::ScalingAction action;  ///< Empty unless status.ok().
  };

  /// Advances every tenant's planning to `now` across the worker pool and
  /// returns the drained actions in registration order (deterministic
  /// regardless of worker scheduling). Each tenant fails or succeeds
  /// independently — a tenant whose serving clock is already past `now`
  /// reports its own Invalid status while the rest of the fleet planning
  /// proceeds.
  std::vector<TenantPlan> PlanAll(double now);

  /// Aggregated serving state across all tenants.
  FleetSnapshot Snapshot() const;

  // -- Durability & migration (rs::persist) ---------------------------------
  //
  // A tenant snapshot is one self-contained rs::persist container (magic,
  // versioned sections, CRC32 trailer) holding the tenant's name plus its
  // Scaler's full durable state — see Scaler::SaveState for the continuation
  // guarantee. A fleet snapshot is the same records for every tenant, in
  // registration order.

  /// Writes one tenant's durable state (name + Scaler record) to `out`.
  Status SnapshotTenant(const std::string& tenant, std::ostream& out) const;

  /// Reads one tenant snapshot from `in` and registers it (at the end of
  /// the registration order, like any new Register). The restored scaler's
  /// planning shards feed this fleet's pool. On any error the fleet is
  /// unchanged.
  Status RestoreTenant(std::istream& in,
                       const TenantRestoreOptions& options = {});

  /// Writes every tenant's durable state, in registration order.
  Status SaveFleet(std::ostream& out) const;

  /// Rebuilds a whole fleet from a SaveFleet stream; tenants come back in
  /// their original registration order.
  static Result<ScalerFleet> LoadFleet(std::istream& in,
                                       const FleetRestoreOptions& options = {});

  /// \brief Moves one tenant to another live fleet: snapshot → restore into
  ///        `target` → retire here. The tenant's action sequence continues
  ///        byte-identically across the cut (same guarantee as
  ///        Scaler::SaveState). Succeeds or leaves *both* fleets unchanged —
  ///        the source keeps the tenant whenever the restore into `target`
  ///        fails (e.g. a name collision without `options.rename`).
  Status MigrateTenant(const std::string& tenant, ScalerFleet* target,
                       const TenantRestoreOptions& options = {});

 private:
  struct Tenant {
    std::string name;
    Scaler scaler;
    Tenant(std::string n, Scaler s)
        : name(std::move(n)), scaler(std::move(s)) {}
  };

  /// Index into tenants_, or tenants_.size() if unknown.
  std::size_t FindIndex(const std::string& tenant) const;

  /// Writes one TENT record (name + Scaler state) into an open writer.
  Status WriteTenantRecord(persist::Writer* writer, std::size_t index) const;

  /// Reads one TENT record. `clock_for` maps the snapshot's tenant name to
  /// the replacement decision clock (may yield nullptr — then a snapshot
  /// that needs one fails cleanly inside the Scaler restore).
  static Result<std::pair<std::string, Scaler>> ReadTenantRecord(
      persist::Reader* reader,
      const std::function<sim::DecisionClock*(const std::string&)>& clock_for);

  /// Registration order; unique_ptr keeps tenant addresses stable across
  /// vector reshuffles, so worker tasks and Find() pointers stay valid.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  /// Name → tenants_ index: Observe() routes every arrival through this,
  /// so lookup must not scale with fleet size.
  std::unordered_map<std::string, std::size_t> index_;
  std::unique_ptr<common::ThreadPool> pool_;
  bool intra_plan_sharding_ = true;
};

}  // namespace rs::api
