#include "rs/core/sequential_scaler.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/kernels.hpp"
#include "rs/common/logging.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/core/kappa.hpp"

namespace rs::core {

namespace {

/// Rows of γ/τ staged per solve batch: bounds tile memory at kPlanTile × R
/// doubles per buffer while keeping pool joins infrequent.
constexpr std::size_t kPlanTile = 32;

/// Path-block granularity of the counter-based draw substreams: block b of
/// a query's R Monte Carlo paths always draws from the same substream, so
/// the blocking — and therefore every drawn byte — depends only on (query
/// index, R), never on the worker count. 128 gives the paper's R = 1000
/// eight-way draw parallelism while each task still fills a full tile of
/// rows per block (microseconds of work, far above scheduling cost).
constexpr std::size_t kPlanRngBlock = 128;

/// Resize + shrink-to-fit hysteresis: buffers shrink only once they retain
/// more than twice the live size, so alternating sizes don't thrash
/// reallocation but a tenant whose R drops stops pinning peak memory.
template <typename T>
void FitVector(std::vector<T>* v, std::size_t n) {
  v->resize(n);
  if (v->capacity() > 2 * std::max<std::size_t>(n, 1)) v->shrink_to_fit();
}

/// Exact (v_lo, v_hi) order statistics at ranks lo <= hi of values[0..n) by
/// selection. When the interpolation sits low in the distribution it is
/// cheaper to select at hi and max-scan the small left partition than to
/// select at lo and min-scan the large right one; pick the cheaper side.
void SelectOrderStatPair(double* values, std::size_t n, std::size_t lo,
                         std::size_t hi, double* v_lo, double* v_hi) {
  if (hi == lo) {
    std::nth_element(values, values + lo, values + n);
    *v_lo = values[lo];
    *v_hi = *v_lo;
    return;
  }
  if (hi <= n - 1 - lo) {
    std::nth_element(values, values + hi, values + n);
    *v_hi = values[hi];
    *v_lo = *std::max_element(values, values + hi);
  } else {
    std::nth_element(values, values + lo, values + n);
    *v_lo = values[lo];
    *v_hi = *std::min_element(values + lo + 1, values + n);
  }
}

/// \brief HP decision for deterministic τ without materializing ξ.
///
/// The map target → slack = max(0, Λ⁻¹(target) − now) − τ is non-decreasing,
/// so the two order statistics the type-7 quantile interpolates can be
/// selected directly on the cumulative targets and inverted individually:
/// two inversions instead of R, with exactly the doubles the reference path
/// computes. The previous round's quantile for the same query index is kept
/// in hp_cuts as a warm pivot: one branchless counting pass confirms the
/// pivot bounds at least hi+1 elements, and the exact selection then runs on
/// only that ~αR-sized prefilter. `shard->targets` is consumed (reordered).
/// hp_cuts must be pre-sized past k_index (slots are written concurrently by
/// distinct query indices, so no resize may happen here).
Result<Decision> SolveHpDeterministicTau(
    const workload::PiecewiseConstantIntensity& forecast, PlanShard* shard,
    std::vector<double>* hp_cuts, double now, double tau, double alpha,
    std::size_t r_count, std::size_t k_index, double base) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("SolveHpConstrained: alpha must lie in (0, 1)");
  }
  std::vector<double>& targets = shard->targets;
  // The scalar path fails the whole round when any target lies beyond a
  // zero-rate tail; probe the largest target so this path fails identically
  // instead of silently answering from the two selected statistics.
  if (forecast.rates().back() <= 0.0) {
    const double max_target = *std::max_element(targets.begin(), targets.end());
    RS_RETURN_NOT_OK(forecast.InverseCumulative(max_target).status());
  }
  const double pos = alpha * static_cast<double>(r_count - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, r_count - 1);
  const double frac = pos - static_cast<double>(lo);

  double t_lo = 0.0, t_hi = 0.0;
  bool selected = false;
  RS_DCHECK(k_index < hp_cuts->size());
  if ((*hp_cuts)[k_index] > 0.0) {
    // γ's α-quantile at this query index moves only by sampling noise
    // between rounds; a small safety margin above last round's cut bounds
    // the quantile pair with near-certainty (miss → exact fallback below).
    const double margin =
        std::max(1.0, 0.2 * std::sqrt(static_cast<double>(k_index + 1)));
    const double pivot = base + (*hp_cuts)[k_index] + margin;
    const double* t = targets.data();
    std::size_t count = 0;
    for (std::size_t r = 0; r < r_count; ++r) {
      count += t[r] < pivot ? 1 : 0;
    }
    if (count > hi) {
      // The count elements below the pivot are exactly the count smallest:
      // ranks lo and hi live inside the prefilter.
      shard->gather.resize(r_count);
      double* g = shard->gather.data();
      std::size_t idx = 0;
      for (std::size_t r = 0; r < r_count; ++r) {
        if (t[r] < pivot) g[idx++] = t[r];
      }
      SelectOrderStatPair(g, count, lo, hi, &t_lo, &t_hi);
      selected = true;
    }
  }
  if (!selected) {
    SelectOrderStatPair(targets.data(), r_count, lo, hi, &t_lo, &t_hi);
  }
  (*hp_cuts)[k_index] = t_hi - base;

  RS_ASSIGN_OR_RETURN(const double inv_lo, forecast.InverseCumulative(t_lo));
  const double slack_lo = std::max(0.0, inv_lo - now) - tau;
  double slack_hi = slack_lo;
  if (hi != lo) {
    RS_ASSIGN_OR_RETURN(const double inv_hi, forecast.InverseCumulative(t_hi));
    slack_hi = std::max(0.0, inv_hi - now) - tau;
  }
  const double x_star = slack_lo * (1.0 - frac) + slack_hi * frac;
  Decision d;
  d.feasible = x_star >= 0.0;
  d.creation_time = std::max(x_star, 0.0);
  return d;
}

/// Everything one planning round needs, shared by both planners and both
/// kernel modes.
struct RoundParams {
  const workload::PiecewiseConstantIntensity* forecast = nullptr;
  const stats::DurationDistribution* pending = nullptr;
  common::ThreadPool* pool = nullptr;
  ScalerVariant variant = ScalerVariant::kHittingProbability;
  double alpha = 0.1;
  double rt_excess = 0.0;
  double idle_budget = 0.0;
  double now = 0.0;          ///< Forecast-local decision time.
  double emit_origin = 0.0;  ///< Clock the creation times are emitted on.
  std::size_t r_count = 0;
  std::size_t skip = 0;   ///< Upcoming queries already covered this round.
  std::size_t count = 0;  ///< Decisions to commit this round.
  bool stop_on_unbounded = false;
  const char* who = "RobustScaler";
};

bool DeterministicTau(const RoundParams& p) {
  return p.pending->kind() ==
         stats::DurationDistribution::Kind::kDeterministic;
}

/// \brief Draw phase of one tile: stages the cumulative exposure rows
///        tile_gamma[j − j_begin][r] = γ_j(r) (and, for stochastic τ, the
///        pending rows tile_tau) for round-relative query indices
///        j ∈ [j_begin, j_end).
///
/// Every draw comes from a counter-based substream of `draw_base` keyed on
/// (j, path block): block b of query j draws its Exp(1) increments from
/// draw_base.SubstreamAt(1 + 2j).SubstreamAt(b) and its τ samples from
/// draw_base.SubstreamAt(2 + 2j).SubstreamAt(b); the Gamma(skip, 1)
/// warm-up exposure of the already-covered queries (first tile only) draws
/// from draw_base.SubstreamAt(0).SubstreamAt(b). The layout depends only
/// on (j, r_count) — never on the pool — so serial and parallel fills
/// produce identical bytes, and ws->gamma carries the cumulative γ into
/// the next tile.
void FillTile(const RoundParams& p, const stats::Rng& draw_base,
              std::size_t j_begin, std::size_t j_end, PlanWorkspace* ws,
              common::ThreadPool* pool) {
  const std::size_t r_count = p.r_count;
  const bool stochastic_tau = !DeterministicTau(p);
  const std::size_t rows = j_end - j_begin;
  double* tile = ws->tile_gamma.data();
  double* tile_tau = stochastic_tau ? ws->tile_tau.data() : nullptr;
  double* carry = ws->gamma.data();
  common::ParallelForChunks(
      pool, r_count, kPlanRngBlock,
      [&](std::size_t block, std::size_t begin, std::size_t end) {
        const std::size_t len = end - begin;
        if (j_begin == 0) {
          if (p.skip > 0) {
            stats::Rng warmup = draw_base.SubstreamAt(0).SubstreamAt(block);
            stats::SampleGammaFill(&warmup, static_cast<double>(p.skip), 1.0,
                                   carry + begin, len);
          } else {
            std::fill(carry + begin, carry + end, 0.0);
          }
        }
        for (std::size_t j = j_begin; j < j_end; ++j) {
          double* row = tile + (j - j_begin) * r_count + begin;
          stats::Rng exp_rng =
              draw_base.SubstreamAt(1 + 2 * j).SubstreamAt(block);
          stats::SampleExponentialZigguratFill(&exp_rng, 1.0, row, len);
          const double* prev =
              j == j_begin ? carry + begin
                           : tile + (j - j_begin - 1) * r_count + begin;
          for (std::size_t r = 0; r < len; ++r) row[r] += prev[r];
          if (stochastic_tau) {
            stats::Rng tau_rng =
                draw_base.SubstreamAt(2 + 2 * j).SubstreamAt(block);
            double* tau_row = tile_tau + (j - j_begin) * r_count + begin;
            for (std::size_t r = 0; r < len; ++r) {
              tau_row[r] = p.pending->Sample(&tau_rng);
            }
          }
        }
        const double* last = tile + (rows - 1) * r_count;
        std::copy(last + begin, last + end, carry + begin);
      });
}

Result<Decision> SolveVariant(DecisionKernel* kernel, const RoundParams& p) {
  switch (p.variant) {
    case ScalerVariant::kHittingProbability:
      return kernel->SolveHp(p.alpha);
    case ScalerVariant::kResponseTime:
      return kernel->SolveRt(p.rt_excess);
    case ScalerVariant::kCost:
      return kernel->SolveCost(p.idle_budget);
  }
  return Status::Invalid("RobustScalerPolicy: unknown variant");
}

/// Optimized-kernel solve of one query's decision on its own shard; safe to
/// run concurrently with other rows (distinct shards, distinct hp_cuts
/// slots, const forecast).
SolvedDecision SolveOptimizedRow(const RoundParams& p, PlanShard* shard,
                                 std::vector<double>* hp_cuts,
                                 const double* gamma_row,
                                 const double* tau_row, std::size_t abs_k,
                                 double base) {
  SolvedDecision out;
  const std::size_t r_count = p.r_count;
  const bool deterministic_tau = DeterministicTau(p);
  shard->targets.resize(r_count);
  double* targets = shard->targets.data();
  for (std::size_t r = 0; r < r_count; ++r) targets[r] = base + gamma_row[r];

  Result<Decision> decision = Decision{};
  if (deterministic_tau &&
      p.variant == ScalerVariant::kHittingProbability) {
    decision =
        SolveHpDeterministicTau(*p.forecast, shard, hp_cuts, p.now,
                                p.pending->Mean(), p.alpha, r_count, abs_k,
                                base);
  } else if (deterministic_tau) {
    // RT/cost with constant τ: the pairing of ξ with τ is irrelevant, so
    // sort the targets in place and invert them in one ascending sweep —
    // ξ lands pre-sorted and the kernel needs no sort of its own.
    common::RadixSortAscending(targets, r_count, &shard->radix);
    shard->samples.xi.resize(r_count);
    shard->samples.tau.resize(r_count);
    Status status = p.forecast->InverseCumulativeAscending(
        targets, r_count, shard->samples.xi.data());
    if (!status.ok()) {
      out.status = std::move(status);
      return out;
    }
    for (std::size_t r = 0; r < r_count; ++r) {
      shard->samples.xi[r] = std::max(0.0, shard->samples.xi[r] - p.now);
    }
    std::fill(shard->samples.tau.begin(), shard->samples.tau.end(),
              p.pending->Mean());
    shard->kernel.BindAscendingXi(shard->samples);
    decision = SolveVariant(&shard->kernel, p);
  } else {
    Status status = p.forecast->InverseCumulativeBatch(
        shard->targets, &shard->samples.xi, &shard->order);
    if (!status.ok()) {
      out.status = std::move(status);
      return out;
    }
    shard->samples.tau.resize(r_count);
    for (std::size_t r = 0; r < r_count; ++r) {
      shard->samples.xi[r] = std::max(0.0, shard->samples.xi[r] - p.now);
      shard->samples.tau[r] = tau_row[r];
    }
    shard->kernel.Bind(shard->samples);
    decision = SolveVariant(&shard->kernel, p);
  }
  if (!decision.ok()) {
    out.status = decision.status();
  } else {
    out.decision = *decision;
  }
  return out;
}

/// Reference solve of one query's decision: scalar Result-wrapped
/// inversions and the free-function solvers, on the same drawn bytes.
SolvedDecision SolveReferenceRow(const RoundParams& p,
                                 const double* gamma_row,
                                 const double* tau_row, McSamples* samples,
                                 double base) {
  SolvedDecision out;
  for (std::size_t r = 0; r < p.r_count; ++r) {
    auto inv = p.forecast->InverseCumulative(base + gamma_row[r]);
    if (!inv.ok()) {
      out.status = inv.status();
      return out;
    }
    samples->xi[r] = std::max(0.0, inv.ValueOrDie() - p.now);
  }
  const bool deterministic_tau = DeterministicTau(p);
  for (std::size_t r = 0; r < p.r_count; ++r) {
    samples->tau[r] = deterministic_tau ? p.pending->Mean() : tau_row[r];
  }
  Result<Decision> decision = Decision{};
  switch (p.variant) {
    case ScalerVariant::kHittingProbability:
      decision = SolveHpConstrained(*samples, p.alpha);
      break;
    case ScalerVariant::kResponseTime:
      decision = SolveRtConstrained(*samples, p.rt_excess);
      break;
    case ScalerVariant::kCost:
      decision = SolveCostConstrained(*samples, p.idle_budget);
      break;
  }
  if (!decision.ok()) {
    out.status = decision.status();
  } else {
    out.decision = *decision;
  }
  return out;
}

/// \brief One planning round, tiled and sharded: draw phase over fixed
///        path blocks, solve phase over per-query shards, k-ordered
///        reduction.
///
/// The master generator advances by exactly one raw draw per round (the
/// substream epoch), so failures and early stops never shift later rounds'
/// draws, and the emitted actions are byte-identical for any pool size —
/// including the reference-kernel mode, which consumes the same drawn
/// bytes through the naive serial solvers.
sim::ScalingAction RunMonteCarloRound(const RoundParams& p,
                                      stats::Rng* master, PlanWorkspace* ws) {
  sim::ScalingAction action;
  if (p.count == 0) return action;
  const std::size_t r_count = p.r_count;
  ws->EnsureSize(r_count);
  const double base = ws->CumulativeAt(*p.forecast, p.now);
  const bool reference = common::UseReferenceKernels();
  const bool deterministic_tau = DeterministicTau(p);
  // Serial pre-sizing of everything the fan-out writes into: the warm-pivot
  // table (distinct slots per query), the γ/τ tiles, the reduction buffer.
  // Tiles are sized to the round's real depth (shallow rounds keep shallow
  // tiles), capped at kPlanTile rows.
  const std::size_t tile_rows = std::min(kPlanTile, p.count);
  if (deterministic_tau &&
      p.variant == ScalerVariant::kHittingProbability &&
      ws->hp_cuts.size() < p.skip + p.count) {
    ws->hp_cuts.resize(p.skip + p.count, 0.0);
  }
  if (ws->tile_gamma.size() < tile_rows * r_count) {
    ws->tile_gamma.resize(tile_rows * r_count);
  }
  if (!deterministic_tau && ws->tile_tau.size() < tile_rows * r_count) {
    ws->tile_tau.resize(tile_rows * r_count);
  }
  if (ws->decisions.size() < tile_rows) ws->decisions.resize(tile_rows);

  // The round's entire draw schedule keys off this snapshot; the master
  // stream pays one draw per round as the substream epoch.
  const stats::Rng draw_base = *master;
  master->NextUint64();

  // Reference mode keeps the historical cost profile: fresh sample buffers
  // every round, scalar inversions, per-solve sorts, no pool.
  McSamples reference_samples;
  if (reference) {
    reference_samples.xi.resize(r_count);
    reference_samples.tau.resize(r_count);
  }
  common::ThreadPool* pool = reference ? nullptr : p.pool;

  for (std::size_t tile_begin = 0; tile_begin < p.count;
       tile_begin += kPlanTile) {
    const std::size_t tile_end = std::min(tile_begin + kPlanTile, p.count);
    const std::size_t rows = tile_end - tile_begin;
    FillTile(p, draw_base, tile_begin, tile_end, ws, pool);
    const auto tau_row = [&](std::size_t c) -> const double* {
      return deterministic_tau ? nullptr
                               : ws->tile_tau.data() + c * r_count;
    };
    if (reference) {
      for (std::size_t c = 0; c < rows; ++c) {
        ws->decisions[c] =
            SolveReferenceRow(p, ws->tile_gamma.data() + c * r_count,
                              tau_row(c), &reference_samples, base);
      }
    } else {
      // Inline execution solves rows one after another, so a single shard
      // serves the whole tile; only a real fan-out needs a shard per row.
      const bool inline_solve = pool == nullptr || pool->threads() == 0;
      ws->EnsureShards(inline_solve ? 1 : rows);
      common::ParallelFor(pool, rows, [&](std::size_t c) {
        ws->decisions[c] = SolveOptimizedRow(
            p, &ws->shards[inline_solve ? 0 : c], &ws->hp_cuts,
            ws->tile_gamma.data() + c * r_count, tau_row(c),
            p.skip + tile_begin + c, base);
      });
    }
    // k-ordered reduction: replays the serial loop's failure and
    // early-stop semantics exactly, partial actions included.
    for (std::size_t c = 0; c < rows; ++c) {
      SolvedDecision& solved = ws->decisions[c];
      if (!solved.status.ok()) {
        RS_LOG(Warning) << p.who << ": decision for upcoming query "
                        << p.skip + tile_begin + c + 1
                        << " failed: " << solved.status.ToString();
        return action;
      }
      // Later queries are even more slack, so the round is done.
      if (p.stop_on_unbounded && solved.decision.unbounded) return action;
      action.creation_times.push_back(p.emit_origin +
                                      solved.decision.creation_time);
    }
  }
  return action;
}

}  // namespace

std::size_t PlanShard::RetainedBytes() const {
  return (targets.capacity() + gather.capacity() + samples.xi.capacity() +
          samples.tau.capacity()) *
             sizeof(double) +
         order.capacity() * sizeof(std::uint32_t) +
         (radix.keys.capacity() + radix.tmp.capacity()) *
             sizeof(std::uint64_t) +
         kernel.WorkspaceBytes();
}

void PlanWorkspace::EnsureSize(std::size_t r) {
  FitVector(&gamma, r);
  // Tiles grow on demand (to the real round depth, capped at kPlanTile
  // rows) inside RunMonteCarloRound; here they only shrink back under the
  // cap when R drops.
  if (tile_gamma.size() > kPlanTile * r) FitVector(&tile_gamma, kPlanTile * r);
  if (tile_tau.size() > kPlanTile * r) FitVector(&tile_tau, kPlanTile * r);
  // Shards sized for a larger R are dropped wholesale (their kernels and
  // scratch rebuilt lazily at the new size).
  if (!shards.empty() &&
      shards.front().targets.capacity() > 2 * std::max<std::size_t>(r, 1)) {
    shards.clear();
    shards.shrink_to_fit();
  }
}

void PlanWorkspace::EnsureShards(std::size_t count) {
  if (shards.size() < count) shards.resize(count);
}

std::size_t PlanWorkspace::RetainedBytes() const {
  std::size_t bytes = (gamma.capacity() + tile_gamma.capacity() +
                       tile_tau.capacity() + hp_cuts.capacity()) *
                          sizeof(double) +
                      decisions.capacity() * sizeof(SolvedDecision);
  for (const auto& shard : shards) bytes += shard.RetainedBytes();
  return bytes;
}

double PlanWorkspace::CumulativeAt(
    const workload::PiecewiseConstantIntensity& forecast, double now) {
  if (!cache_valid_ || now != cached_now_) {
    cached_base_ = forecast.Cumulative(now);
    cached_now_ = now;
    cache_valid_ = true;
  }
  return cached_base_;
}

RobustScalerPolicy::RobustScalerPolicy(
    workload::PiecewiseConstantIntensity forecast,
    stats::DurationDistribution pending, SequentialScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
  RS_CHECK(options_.planning_interval > 0.0) << "planning interval must be > 0";
}

const char* RobustScalerPolicy::name() const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return "RobustScaler-HP";
    case ScalerVariant::kResponseTime:
      return "RobustScaler-RT";
    case ScalerVariant::kCost:
      return "RobustScaler-cost";
  }
  return "RobustScaler";
}

Result<Decision> RobustScalerPolicy::SolveOne(const McSamples& samples) const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return SolveHpConstrained(samples, options_.alpha);
    case ScalerVariant::kResponseTime:
      return SolveRtConstrained(samples, options_.rt_excess);
    case ScalerVariant::kCost:
      return SolveCostConstrained(samples, options_.idle_budget);
  }
  return Status::Invalid("RobustScalerPolicy: unknown variant");
}

sim::ScalingAction RobustScalerPolicy::Initialize(const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

sim::ScalingAction RobustScalerPolicy::OnPlanningTick(
    const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

std::size_t RobustScalerPolicy::CommitDepth(double now) {
  // `now` is already on the forecast-local clock (PlanWindow converts).
  // Section VII-A1: κ is time-dependent, computed from the local intensity.
  // λ̄ = max forecast rate over [now, now + window] so an imminent spike is
  // provisioned for.
  double lambda_bar = forecast_.Rate(now);
  const double step = std::max(forecast_.dt(), 1.0);
  for (double t = now; t <= now + options_.local_intensity_window; t += step) {
    lambda_bar = std::max(lambda_bar, forecast_.Rate(t));
  }
  lambda_bar = std::max(lambda_bar, 1e-9);

  const double alpha = options_.variant == ScalerVariant::kHittingProbability
                           ? options_.alpha
                           : options_.kappa_alpha;
  // κ depends on λ̄ through the smooth threshold λ̄·τ, so memoize on λ̄
  // quantized to 2% steps — the planning loop calls this every Δ seconds
  // and λ̄ drifts slowly between bins.
  const double quantized =
      std::exp(std::round(std::log(lambda_bar) * 50.0) / 50.0);
  std::size_t kappa = 0;
  if (kappa_cache_valid_ && quantized == kappa_cache_lambda_) {
    kappa = kappa_cache_value_;
  } else {
    auto result = ComputeKappaBinarySearch(alpha, quantized, pending_.Mean(),
                                           options_.max_creations_per_round);
    if (result.ok()) {
      kappa = result.ValueOrDie();
      kappa_cache_lambda_ = quantized;
      kappa_cache_value_ = kappa;
      kappa_cache_valid_ = true;
    } else {
      RS_LOG(Warning) << "RobustScalerPolicy: kappa failed: "
                      << result.status().ToString();
    }
  }
  // m: expected arrivals within one planning interval, at least one.
  const auto m = static_cast<std::size_t>(
      std::ceil(lambda_bar * options_.planning_interval));
  return std::min(kappa + std::max<std::size_t>(m, 1),
                  options_.max_creations_per_round);
}

sim::ScalingAction RobustScalerPolicy::PlanWindow(const sim::SimContext& ctx) {
  // Forecast queries run on the forecast-local clock; scheduled creation
  // times stay on the simulation clock (the offset cancels in x_rel).
  const double now = ctx.now - options_.forecast_origin;
  const std::size_t outstanding = ctx.Outstanding();

  // Decisions are committed once per upcoming-query index (the essence of
  // Algorithm 4): the first `outstanding` upcoming queries already have
  // instances scheduled or alive, so this round plans indices
  // outstanding+1 … depth, where depth = κ(now) + m keeps the scheme the
  // provably-sufficient κ+1 arrivals ahead. The cumulative exposure of the
  // already-covered queries is drawn as Gamma(outstanding, 1); each later
  // query advances every Monte Carlo path by an Exp(1) increment and maps
  // to arrival time via time rescaling ξ = Λ⁻¹(Λ(now) + γ) − now.
  const std::size_t depth = CommitDepth(now);
  if (outstanding >= depth) return {};

  RoundParams params;
  params.forecast = &forecast_;
  params.pending = &pending_;
  params.pool = options_.planning_pool;
  params.variant = options_.variant;
  params.alpha = options_.alpha;
  params.rt_excess = options_.rt_excess;
  params.idle_budget = options_.idle_budget;
  params.now = now;
  params.emit_origin = ctx.now;
  params.r_count = options_.mc_samples;
  params.skip = outstanding;
  params.count = depth - outstanding;
  params.stop_on_unbounded = true;
  params.who = name();
  return RunMonteCarloRound(params, &rng_, &workspace_);
}

HpCountScaler::HpCountScaler(workload::PiecewiseConstantIntensity forecast,
                             stats::DurationDistribution pending,
                             HpCountScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.m >= 1) << "m must be >= 1";
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
}

sim::ScalingAction HpCountScaler::Initialize(const sim::SimContext& ctx) {
  double lambda_bar = options_.lambda_bar;
  if (!(lambda_bar > 0.0)) lambda_bar = forecast_.MaxRate();
  auto kappa = ComputeKappaMonteCarlo(&rng_, options_.alpha, lambda_bar,
                                      pending_, options_.mc_samples);
  if (!kappa.ok()) {
    RS_LOG(Warning) << "HpCountScaler: kappa failed: "
                    << kappa.status().ToString();
    kappa_ = 0;
  } else {
    kappa_ = kappa.ValueOrDie();
  }
  // Line 4 of Algorithm 4: initial plan covers queries 1 … κ+m.
  return PlanAhead(ctx.now, 1, kappa_ + options_.m);
}

sim::ScalingAction HpCountScaler::OnQueryArrival(const sim::SimContext& ctx,
                                                 bool cold_start) {
  (void)cold_start;
  ++arrivals_since_plan_;
  if (arrivals_since_plan_ < options_.m) return {};
  arrivals_since_plan_ = 0;
  // Line 6: plan for the (κ+1)-th … (κ+m)-th upcoming queries.
  return PlanAhead(ctx.now, kappa_ + 1, options_.m);
}

sim::ScalingAction HpCountScaler::PlanAhead(double now, std::size_t first_j,
                                            std::size_t count) {
  RoundParams params;
  params.forecast = &forecast_;
  params.pending = &pending_;
  params.pool = options_.planning_pool;
  params.variant = ScalerVariant::kHittingProbability;
  params.alpha = options_.alpha;
  params.now = now;
  params.emit_origin = now;
  params.r_count = options_.mc_samples;
  params.skip = first_j - 1;
  params.count = count;
  params.stop_on_unbounded = false;
  params.who = name();
  return RunMonteCarloRound(params, &rng_, &workspace_);
}

}  // namespace rs::core
