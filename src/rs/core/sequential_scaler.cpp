#include "rs/core/sequential_scaler.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/kernels.hpp"
#include "rs/common/logging.hpp"
#include "rs/core/kappa.hpp"

namespace rs::core {

namespace {

/// Advances every Monte Carlo path by one Exp(1) increment (ziggurat
/// sampler — the single biggest per-decision cost). Both kernel modes go
/// through this, so the generator consumes the same draws in the same order
/// regardless of which kernels solve the decision.
void AdvanceGamma(stats::Rng* rng, PlanWorkspace* ws, std::size_t r_count) {
  stats::SampleExponentialZigguratFill(rng, 1.0, ws->exp_inc.data(), r_count);
  double* gamma = ws->gamma.data();
  const double* inc = ws->exp_inc.data();
  for (std::size_t r = 0; r < r_count; ++r) gamma[r] += inc[r];
}

/// Draws the pending-time samples (after the round's arrival draws, in both
/// kernel modes — deterministic distributions consume nothing).
void FillTau(stats::Rng* rng, const stats::DurationDistribution& pending,
             double* tau, std::size_t r_count) {
  for (std::size_t r = 0; r < r_count; ++r) tau[r] = pending.Sample(rng);
}

/// Exact (v_lo, v_hi) order statistics at ranks lo <= hi of values[0..n) by
/// selection. When the interpolation sits low in the distribution it is
/// cheaper to select at hi and max-scan the small left partition than to
/// select at lo and min-scan the large right one; pick the cheaper side.
void SelectOrderStatPair(double* values, std::size_t n, std::size_t lo,
                         std::size_t hi, double* v_lo, double* v_hi) {
  if (hi == lo) {
    std::nth_element(values, values + lo, values + n);
    *v_lo = values[lo];
    *v_hi = *v_lo;
    return;
  }
  if (hi <= n - 1 - lo) {
    std::nth_element(values, values + hi, values + n);
    *v_hi = values[hi];
    *v_lo = *std::max_element(values, values + hi);
  } else {
    std::nth_element(values, values + lo, values + n);
    *v_lo = values[lo];
    *v_hi = *std::min_element(values + lo + 1, values + n);
  }
}

/// \brief HP decision for deterministic τ without materializing ξ.
///
/// The map target → slack = max(0, Λ⁻¹(target) − now) − τ is non-decreasing,
/// so the two order statistics the type-7 quantile interpolates can be
/// selected directly on the cumulative targets and inverted individually:
/// two inversions instead of R, with exactly the doubles the reference path
/// computes. The previous round's quantile for the same query index is kept
/// in ws->hp_cuts as a warm pivot: one branchless counting pass confirms the
/// pivot bounds at least hi+1 elements, and the exact selection then runs on
/// only that ~αR-sized prefilter. `ws->targets` is consumed (reordered).
Result<Decision> SolveHpDeterministicTau(
    const workload::PiecewiseConstantIntensity& forecast, PlanWorkspace* ws,
    double now, double tau, double alpha, std::size_t r_count,
    std::size_t k_index, double base) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("SolveHpConstrained: alpha must lie in (0, 1)");
  }
  std::vector<double>& targets = ws->targets;
  // The scalar path fails the whole round when any target lies beyond a
  // zero-rate tail; probe the largest target so this path fails identically
  // instead of silently answering from the two selected statistics.
  if (forecast.rates().back() <= 0.0) {
    const double max_target = *std::max_element(targets.begin(), targets.end());
    RS_RETURN_NOT_OK(forecast.InverseCumulative(max_target).status());
  }
  const double pos = alpha * static_cast<double>(r_count - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, r_count - 1);
  const double frac = pos - static_cast<double>(lo);

  double t_lo = 0.0, t_hi = 0.0;
  bool selected = false;
  if (k_index < ws->hp_cuts.size() && ws->hp_cuts[k_index] > 0.0) {
    // γ's α-quantile at this query index moves only by sampling noise
    // between rounds; a small safety margin above last round's cut bounds
    // the quantile pair with near-certainty (miss → exact fallback below).
    const double margin =
        std::max(1.0, 0.2 * std::sqrt(static_cast<double>(k_index + 1)));
    const double pivot = base + ws->hp_cuts[k_index] + margin;
    const double* t = targets.data();
    std::size_t count = 0;
    for (std::size_t r = 0; r < r_count; ++r) {
      count += t[r] < pivot ? 1 : 0;
    }
    if (count > hi) {
      // The count elements below the pivot are exactly the count smallest:
      // ranks lo and hi live inside the prefilter.
      ws->gather.resize(r_count);
      double* g = ws->gather.data();
      std::size_t idx = 0;
      for (std::size_t r = 0; r < r_count; ++r) {
        if (t[r] < pivot) g[idx++] = t[r];
      }
      SelectOrderStatPair(g, count, lo, hi, &t_lo, &t_hi);
      selected = true;
    }
  }
  if (!selected) {
    SelectOrderStatPair(targets.data(), r_count, lo, hi, &t_lo, &t_hi);
  }
  if (ws->hp_cuts.size() <= k_index) ws->hp_cuts.resize(k_index + 1, 0.0);
  ws->hp_cuts[k_index] = t_hi - base;

  RS_ASSIGN_OR_RETURN(const double inv_lo, forecast.InverseCumulative(t_lo));
  const double slack_lo = std::max(0.0, inv_lo - now) - tau;
  double slack_hi = slack_lo;
  if (hi != lo) {
    RS_ASSIGN_OR_RETURN(const double inv_hi, forecast.InverseCumulative(t_hi));
    slack_hi = std::max(0.0, inv_hi - now) - tau;
  }
  const double x_star = slack_lo * (1.0 - frac) + slack_hi * frac;
  Decision d;
  d.feasible = x_star >= 0.0;
  d.creation_time = std::max(x_star, 0.0);
  return d;
}

}  // namespace

void PlanWorkspace::EnsureSize(std::size_t r) {
  gamma.resize(r);
  exp_inc.resize(r);
  targets.resize(r);
  samples.xi.resize(r);
  samples.tau.resize(r);
}

double PlanWorkspace::CumulativeAt(
    const workload::PiecewiseConstantIntensity& forecast, double now) {
  if (!cache_valid_ || now != cached_now_) {
    cached_base_ = forecast.Cumulative(now);
    cached_now_ = now;
    cache_valid_ = true;
  }
  return cached_base_;
}

RobustScalerPolicy::RobustScalerPolicy(
    workload::PiecewiseConstantIntensity forecast,
    stats::DurationDistribution pending, SequentialScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
  RS_CHECK(options_.planning_interval > 0.0) << "planning interval must be > 0";
}

const char* RobustScalerPolicy::name() const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return "RobustScaler-HP";
    case ScalerVariant::kResponseTime:
      return "RobustScaler-RT";
    case ScalerVariant::kCost:
      return "RobustScaler-cost";
  }
  return "RobustScaler";
}

Result<Decision> RobustScalerPolicy::SolveOne(const McSamples& samples) const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return SolveHpConstrained(samples, options_.alpha);
    case ScalerVariant::kResponseTime:
      return SolveRtConstrained(samples, options_.rt_excess);
    case ScalerVariant::kCost:
      return SolveCostConstrained(samples, options_.idle_budget);
  }
  return Status::Invalid("RobustScalerPolicy: unknown variant");
}

Result<Decision> RobustScalerPolicy::SolveOneInWorkspace() {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return workspace_.kernel.SolveHp(options_.alpha);
    case ScalerVariant::kResponseTime:
      return workspace_.kernel.SolveRt(options_.rt_excess);
    case ScalerVariant::kCost:
      return workspace_.kernel.SolveCost(options_.idle_budget);
  }
  return Status::Invalid("RobustScalerPolicy: unknown variant");
}

sim::ScalingAction RobustScalerPolicy::Initialize(const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

sim::ScalingAction RobustScalerPolicy::OnPlanningTick(
    const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

std::size_t RobustScalerPolicy::CommitDepth(double now) {
  // `now` is already on the forecast-local clock (PlanWindow converts).
  // Section VII-A1: κ is time-dependent, computed from the local intensity.
  // λ̄ = max forecast rate over [now, now + window] so an imminent spike is
  // provisioned for.
  double lambda_bar = forecast_.Rate(now);
  const double step = std::max(forecast_.dt(), 1.0);
  for (double t = now; t <= now + options_.local_intensity_window; t += step) {
    lambda_bar = std::max(lambda_bar, forecast_.Rate(t));
  }
  lambda_bar = std::max(lambda_bar, 1e-9);

  const double alpha = options_.variant == ScalerVariant::kHittingProbability
                           ? options_.alpha
                           : options_.kappa_alpha;
  // κ depends on λ̄ through the smooth threshold λ̄·τ, so memoize on λ̄
  // quantized to 2% steps — the planning loop calls this every Δ seconds
  // and λ̄ drifts slowly between bins.
  const double quantized =
      std::exp(std::round(std::log(lambda_bar) * 50.0) / 50.0);
  std::size_t kappa = 0;
  if (kappa_cache_valid_ && quantized == kappa_cache_lambda_) {
    kappa = kappa_cache_value_;
  } else {
    auto result = ComputeKappaBinarySearch(alpha, quantized, pending_.Mean(),
                                           options_.max_creations_per_round);
    if (result.ok()) {
      kappa = result.ValueOrDie();
      kappa_cache_lambda_ = quantized;
      kappa_cache_value_ = kappa;
      kappa_cache_valid_ = true;
    } else {
      RS_LOG(Warning) << "RobustScalerPolicy: kappa failed: "
                      << result.status().ToString();
    }
  }
  // m: expected arrivals within one planning interval, at least one.
  const auto m = static_cast<std::size_t>(
      std::ceil(lambda_bar * options_.planning_interval));
  return std::min(kappa + std::max<std::size_t>(m, 1),
                  options_.max_creations_per_round);
}

sim::ScalingAction RobustScalerPolicy::PlanWindow(const sim::SimContext& ctx) {
  sim::ScalingAction action;
  // Forecast queries run on the forecast-local clock; scheduled creation
  // times stay on the simulation clock (the offset cancels in x_rel).
  const double now = ctx.now - options_.forecast_origin;
  const std::size_t outstanding = ctx.Outstanding();

  // Decisions are committed once per upcoming-query index (the essence of
  // Algorithm 4): the first `outstanding` upcoming queries already have
  // instances scheduled or alive, so this round plans indices
  // outstanding+1 … depth, where depth = κ(now) + m keeps the scheme the
  // provably-sufficient κ+1 arrivals ahead.
  const std::size_t depth = CommitDepth(now);
  if (outstanding >= depth) return action;
  const std::size_t r_count = options_.mc_samples;

  // Monte Carlo paths of upcoming arrivals via time rescaling:
  // ξ_j = Λ⁻¹(Λ(now) + γ_j) − now with γ_j a unit-rate Poisson path. The
  // cumulative exposure of the already-covered queries is drawn in one shot
  // as Gamma(outstanding, 1); nothing outstanding means no Gamma draws.
  PlanWorkspace& ws = workspace_;
  ws.EnsureSize(r_count);
  const double base = ws.CumulativeAt(forecast_, now);
  std::fill(ws.gamma.begin(), ws.gamma.end(), 0.0);
  if (outstanding > 0) {
    stats::SampleGammaFill(&rng_, static_cast<double>(outstanding), 1.0,
                           ws.gamma.data(), r_count);
  }

  const bool reference = common::UseReferenceKernels();
  const bool deterministic_tau =
      pending_.kind() == stats::DurationDistribution::Kind::kDeterministic;
  // The reference path keeps the historical cost profile: fresh sample
  // buffers every round, scalar Result-wrapped inversions, per-solve sorts.
  McSamples reference_samples;
  if (reference) {
    reference_samples.xi.resize(r_count);
    reference_samples.tau.resize(r_count);
  }

  for (std::size_t k = outstanding; k < depth; ++k) {
    AdvanceGamma(&rng_, &ws, r_count);
    Result<Decision> decision = Decision{};
    if (reference) {
      bool sampling_failed = false;
      for (std::size_t r = 0; r < r_count; ++r) {
        auto inv = forecast_.InverseCumulative(base + ws.gamma[r]);
        if (!inv.ok()) {
          RS_LOG(Warning) << "RobustScalerPolicy: arrival sampling failed: "
                          << inv.status().ToString();
          sampling_failed = true;
          break;
        }
        reference_samples.xi[r] = std::max(0.0, inv.ValueOrDie() - now);
      }
      if (sampling_failed) return action;
      FillTau(&rng_, pending_, reference_samples.tau.data(), r_count);
      decision = SolveOne(reference_samples);
    } else if (deterministic_tau &&
               options_.variant == ScalerVariant::kHittingProbability) {
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.targets[r] = base + ws.gamma[r];
      }
      decision = SolveHpDeterministicTau(forecast_, &ws, now, pending_.Mean(),
                                         options_.alpha, r_count, k, base);
    } else if (deterministic_tau) {
      // RT/cost with constant τ: the pairing of ξ with τ is irrelevant, so
      // sort the targets in place and invert them in one ascending sweep —
      // ξ lands pre-sorted and the kernel needs no sort of its own.
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.targets[r] = base + ws.gamma[r];
      }
      common::RadixSortAscending(ws.targets.data(), r_count, &ws.radix);
      auto status = forecast_.InverseCumulativeAscending(
          ws.targets.data(), r_count, ws.samples.xi.data());
      if (!status.ok()) {
        RS_LOG(Warning) << "RobustScalerPolicy: arrival sampling failed: "
                        << status.ToString();
        return action;
      }
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.samples.xi[r] = std::max(0.0, ws.samples.xi[r] - now);
      }
      FillTau(&rng_, pending_, ws.samples.tau.data(), r_count);
      ws.kernel.BindAscendingXi(ws.samples);
      decision = SolveOneInWorkspace();
    } else {
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.targets[r] = base + ws.gamma[r];
      }
      auto status = forecast_.InverseCumulativeBatch(ws.targets,
                                                     &ws.samples.xi, &ws.order);
      if (!status.ok()) {
        RS_LOG(Warning) << "RobustScalerPolicy: arrival sampling failed: "
                        << status.ToString();
        return action;
      }
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.samples.xi[r] = std::max(0.0, ws.samples.xi[r] - now);
      }
      FillTau(&rng_, pending_, ws.samples.tau.data(), r_count);
      ws.kernel.Bind(ws.samples);
      decision = SolveOneInWorkspace();
    }
    if (!decision.ok()) {
      RS_LOG(Warning) << "RobustScalerPolicy: decision failed: "
                      << decision.status().ToString();
      return action;
    }
    if (decision->unbounded) break;  // Later queries are even more slack.
    action.creation_times.push_back(ctx.now + decision->creation_time);
  }
  return action;
}

HpCountScaler::HpCountScaler(workload::PiecewiseConstantIntensity forecast,
                             stats::DurationDistribution pending,
                             HpCountScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.m >= 1) << "m must be >= 1";
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
}

sim::ScalingAction HpCountScaler::Initialize(const sim::SimContext& ctx) {
  double lambda_bar = options_.lambda_bar;
  if (!(lambda_bar > 0.0)) lambda_bar = forecast_.MaxRate();
  auto kappa = ComputeKappaMonteCarlo(&rng_, options_.alpha, lambda_bar,
                                      pending_, options_.mc_samples);
  if (!kappa.ok()) {
    RS_LOG(Warning) << "HpCountScaler: kappa failed: "
                    << kappa.status().ToString();
    kappa_ = 0;
  } else {
    kappa_ = kappa.ValueOrDie();
  }
  // Line 4 of Algorithm 4: initial plan covers queries 1 … κ+m.
  return PlanAhead(ctx.now, 1, kappa_ + options_.m);
}

sim::ScalingAction HpCountScaler::OnQueryArrival(const sim::SimContext& ctx,
                                                 bool cold_start) {
  (void)cold_start;
  ++arrivals_since_plan_;
  if (arrivals_since_plan_ < options_.m) return {};
  arrivals_since_plan_ = 0;
  // Line 6: plan for the (κ+1)-th … (κ+m)-th upcoming queries.
  return PlanAhead(ctx.now, kappa_ + 1, options_.m);
}

sim::ScalingAction HpCountScaler::PlanAhead(double now, std::size_t first_j,
                                            std::size_t count) {
  sim::ScalingAction action;
  if (count == 0) return action;
  const std::size_t r_count = options_.mc_samples;
  PlanWorkspace& ws = workspace_;
  ws.EnsureSize(r_count);
  const double base = ws.CumulativeAt(forecast_, now);

  std::fill(ws.gamma.begin(), ws.gamma.end(), 0.0);
  const std::size_t skip = first_j - 1;
  if (skip > 0) {
    stats::SampleGammaFill(&rng_, static_cast<double>(skip), 1.0,
                           ws.gamma.data(), r_count);
  }

  const bool reference = common::UseReferenceKernels();
  const bool deterministic_tau =
      pending_.kind() == stats::DurationDistribution::Kind::kDeterministic;
  McSamples reference_samples;
  if (reference) {
    reference_samples.xi.resize(r_count);
    reference_samples.tau.resize(r_count);
  }

  for (std::size_t j = 0; j < count; ++j) {
    AdvanceGamma(&rng_, &ws, r_count);
    Result<Decision> decision = Decision{};
    if (reference) {
      for (std::size_t r = 0; r < r_count; ++r) {
        auto inv = forecast_.InverseCumulative(base + ws.gamma[r]);
        if (!inv.ok()) return action;
        reference_samples.xi[r] = std::max(0.0, inv.ValueOrDie() - now);
      }
      FillTau(&rng_, pending_, reference_samples.tau.data(), r_count);
      decision = SolveHpConstrained(reference_samples, options_.alpha);
    } else if (deterministic_tau) {
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.targets[r] = base + ws.gamma[r];
      }
      decision =
          SolveHpDeterministicTau(forecast_, &ws, now, pending_.Mean(),
                                  options_.alpha, r_count, skip + j, base);
    } else {
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.targets[r] = base + ws.gamma[r];
      }
      if (!forecast_
               .InverseCumulativeBatch(ws.targets, &ws.samples.xi, &ws.order)
               .ok()) {
        return action;
      }
      for (std::size_t r = 0; r < r_count; ++r) {
        ws.samples.xi[r] = std::max(0.0, ws.samples.xi[r] - now);
      }
      FillTau(&rng_, pending_, ws.samples.tau.data(), r_count);
      ws.kernel.Bind(ws.samples);
      decision = ws.kernel.SolveHp(options_.alpha);
    }
    if (!decision.ok()) return action;
    action.creation_times.push_back(now + decision->creation_time);
  }
  return action;
}

}  // namespace rs::core
