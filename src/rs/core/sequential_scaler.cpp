#include "rs/core/sequential_scaler.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"
#include "rs/core/kappa.hpp"

namespace rs::core {

RobustScalerPolicy::RobustScalerPolicy(
    workload::PiecewiseConstantIntensity forecast,
    stats::DurationDistribution pending, SequentialScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
  RS_CHECK(options_.planning_interval > 0.0) << "planning interval must be > 0";
}

const char* RobustScalerPolicy::name() const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return "RobustScaler-HP";
    case ScalerVariant::kResponseTime:
      return "RobustScaler-RT";
    case ScalerVariant::kCost:
      return "RobustScaler-cost";
  }
  return "RobustScaler";
}

Result<Decision> RobustScalerPolicy::SolveOne(const McSamples& samples) const {
  switch (options_.variant) {
    case ScalerVariant::kHittingProbability:
      return SolveHpConstrained(samples, options_.alpha);
    case ScalerVariant::kResponseTime:
      return SolveRtConstrained(samples, options_.rt_excess);
    case ScalerVariant::kCost:
      return SolveCostConstrained(samples, options_.idle_budget);
  }
  return Status::Invalid("RobustScalerPolicy: unknown variant");
}

sim::ScalingAction RobustScalerPolicy::Initialize(const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

sim::ScalingAction RobustScalerPolicy::OnPlanningTick(
    const sim::SimContext& ctx) {
  return PlanWindow(ctx);
}

std::size_t RobustScalerPolicy::CommitDepth(double now) {
  // `now` is already on the forecast-local clock (PlanWindow converts).
  // Section VII-A1: κ is time-dependent, computed from the local intensity.
  // λ̄ = max forecast rate over [now, now + window] so an imminent spike is
  // provisioned for.
  double lambda_bar = forecast_.Rate(now);
  const double step = std::max(forecast_.dt(), 1.0);
  for (double t = now; t <= now + options_.local_intensity_window; t += step) {
    lambda_bar = std::max(lambda_bar, forecast_.Rate(t));
  }
  lambda_bar = std::max(lambda_bar, 1e-9);

  const double alpha = options_.variant == ScalerVariant::kHittingProbability
                           ? options_.alpha
                           : options_.kappa_alpha;
  // κ depends on λ̄ through the smooth threshold λ̄·τ, so memoize on λ̄
  // quantized to 2% steps — the planning loop calls this every Δ seconds
  // and λ̄ drifts slowly between bins.
  const double quantized =
      std::exp(std::round(std::log(lambda_bar) * 50.0) / 50.0);
  std::size_t kappa = 0;
  if (kappa_cache_valid_ && quantized == kappa_cache_lambda_) {
    kappa = kappa_cache_value_;
  } else {
    auto result = ComputeKappaBinarySearch(alpha, quantized, pending_.Mean(),
                                           options_.max_creations_per_round);
    if (result.ok()) {
      kappa = result.ValueOrDie();
      kappa_cache_lambda_ = quantized;
      kappa_cache_value_ = kappa;
      kappa_cache_valid_ = true;
    } else {
      RS_LOG(Warning) << "RobustScalerPolicy: kappa failed: "
                      << result.status().ToString();
    }
  }
  // m: expected arrivals within one planning interval, at least one.
  const auto m = static_cast<std::size_t>(
      std::ceil(lambda_bar * options_.planning_interval));
  return std::min(kappa + std::max<std::size_t>(m, 1),
                  options_.max_creations_per_round);
}

sim::ScalingAction RobustScalerPolicy::PlanWindow(const sim::SimContext& ctx) {
  sim::ScalingAction action;
  // Forecast queries run on the forecast-local clock; scheduled creation
  // times stay on the simulation clock (the offset cancels in x_rel).
  const double now = ctx.now - options_.forecast_origin;
  const std::size_t outstanding = ctx.Outstanding();

  // Decisions are committed once per upcoming-query index (the essence of
  // Algorithm 4): the first `outstanding` upcoming queries already have
  // instances scheduled or alive, so this round plans indices
  // outstanding+1 … depth, where depth = κ(now) + m keeps the scheme the
  // provably-sufficient κ+1 arrivals ahead.
  const std::size_t depth = CommitDepth(now);
  if (outstanding >= depth) return action;
  const std::size_t r_count = options_.mc_samples;

  // Monte Carlo paths of upcoming arrivals via time rescaling:
  // ξ_j = Λ⁻¹(Λ(now) + γ_j) − now with γ_j a unit-rate Poisson path. The
  // cumulative exposure of the already-covered queries is drawn in one shot
  // as Gamma(outstanding, 1).
  const double base = forecast_.Cumulative(now);
  std::vector<double> gamma(r_count, 0.0);
  if (outstanding > 0) {
    for (std::size_t r = 0; r < r_count; ++r) {
      gamma[r] = stats::SampleGamma(&rng_, static_cast<double>(outstanding), 1.0);
    }
  }
  McSamples samples;
  samples.xi.resize(r_count);
  samples.tau.resize(r_count);

  for (std::size_t k = outstanding; k < depth; ++k) {
    for (std::size_t r = 0; r < r_count; ++r) {
      gamma[r] += stats::SampleExponential(&rng_, 1.0);
      auto inv = forecast_.InverseCumulative(base + gamma[r]);
      if (!inv.ok()) {
        RS_LOG(Warning) << "RobustScalerPolicy: arrival sampling failed: "
                        << inv.status().ToString();
        return action;
      }
      samples.xi[r] = std::max(0.0, inv.ValueOrDie() - now);
      samples.tau[r] = pending_.Sample(&rng_);
    }
    auto decision = SolveOne(samples);
    if (!decision.ok()) {
      RS_LOG(Warning) << "RobustScalerPolicy: decision failed: "
                      << decision.status().ToString();
      return action;
    }
    if (decision->unbounded) break;  // Later queries are even more slack.
    action.creation_times.push_back(ctx.now + decision->creation_time);
  }
  return action;
}

HpCountScaler::HpCountScaler(workload::PiecewiseConstantIntensity forecast,
                             stats::DurationDistribution pending,
                             HpCountScalerOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.m >= 1) << "m must be >= 1";
  RS_CHECK(options_.mc_samples >= 1) << "mc_samples must be >= 1";
}

sim::ScalingAction HpCountScaler::Initialize(const sim::SimContext& ctx) {
  double lambda_bar = options_.lambda_bar;
  if (!(lambda_bar > 0.0)) lambda_bar = forecast_.MaxRate();
  auto kappa = ComputeKappaMonteCarlo(&rng_, options_.alpha, lambda_bar,
                                      pending_, options_.mc_samples);
  if (!kappa.ok()) {
    RS_LOG(Warning) << "HpCountScaler: kappa failed: "
                    << kappa.status().ToString();
    kappa_ = 0;
  } else {
    kappa_ = kappa.ValueOrDie();
  }
  // Line 4 of Algorithm 4: initial plan covers queries 1 … κ+m.
  return PlanAhead(ctx.now, 1, kappa_ + options_.m);
}

sim::ScalingAction HpCountScaler::OnQueryArrival(const sim::SimContext& ctx,
                                                 bool cold_start) {
  (void)cold_start;
  ++arrivals_since_plan_;
  if (arrivals_since_plan_ < options_.m) return {};
  arrivals_since_plan_ = 0;
  // Line 6: plan for the (κ+1)-th … (κ+m)-th upcoming queries.
  return PlanAhead(ctx.now, kappa_ + 1, options_.m);
}

sim::ScalingAction HpCountScaler::PlanAhead(double now, std::size_t first_j,
                                            std::size_t count) {
  sim::ScalingAction action;
  if (count == 0) return action;
  const std::size_t r_count = options_.mc_samples;
  const double base = forecast_.Cumulative(now);

  std::vector<double> gamma(r_count, 0.0);
  const std::size_t skip = first_j - 1;
  if (skip > 0) {
    for (std::size_t r = 0; r < r_count; ++r) {
      gamma[r] = stats::SampleGamma(&rng_, static_cast<double>(skip), 1.0);
    }
  }
  McSamples samples;
  samples.xi.resize(r_count);
  samples.tau.resize(r_count);
  for (std::size_t j = 0; j < count; ++j) {
    for (std::size_t r = 0; r < r_count; ++r) {
      gamma[r] += stats::SampleExponential(&rng_, 1.0);
      auto inv = forecast_.InverseCumulative(base + gamma[r]);
      if (!inv.ok()) return action;
      samples.xi[r] = std::max(0.0, inv.ValueOrDie() - now);
      samples.tau[r] = pending_.Sample(&rng_);
    }
    auto decision = SolveHpConstrained(samples, options_.alpha);
    if (!decision.ok()) return action;
    action.creation_times.push_back(now + decision->creation_time);
  }
  return action;
}

}  // namespace rs::core
