/// \file arrival_predictor.hpp
/// \brief Monte Carlo prediction of upcoming arrival times from a forecast
///        intensity — the sampling primitive behind the scaling decisions
///        (time-rescaling: ξ_j = Λ⁻¹(Λ(now) + γ_j) − now).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/core/decision.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::core {

/// \brief Incremental sampler of future arrival paths under a piecewise-
///        constant intensity.
///
/// Construct at a given `now`; each NextQuery() call returns Monte Carlo
/// samples (relative to now) of the next upcoming query's arrival time,
/// advancing all R coupled paths by one arrival.
class ArrivalPathSampler {
 public:
  /// \param intensity forecast λ(t) whose local time origin the `now`
  ///                  argument refers to.
  /// \param now       current time on the intensity's clock.
  /// \param num_paths Monte Carlo path count R.
  ArrivalPathSampler(const workload::PiecewiseConstantIntensity* intensity,
                     double now, std::size_t num_paths, stats::Rng* rng);

  /// Advances every path past `count` arrivals in one Gamma(count, 1) jump
  /// (used to skip queries that already have instances).
  void Skip(std::size_t count);

  /// Samples the next query's arrival times across all paths, relative to
  /// `now`. Output size is num_paths.
  Result<std::vector<double>> NextQuery();

  std::size_t num_paths() const { return gamma_.size(); }

 private:
  const workload::PiecewiseConstantIntensity* intensity_;
  stats::Rng* rng_;
  double now_;
  double base_;
  std::vector<double> gamma_;
};

/// \brief Samples a full R×J matrix of upcoming arrival times (row r =
///        one path), plus matching pending-time draws, ready for the
///        decision solvers. Convenience for benches and examples.
///
/// \return samples[j] holds the McSamples for the (skip + j + 1)-th
///         upcoming query.
Result<std::vector<McSamples>> PredictUpcomingQueries(
    const workload::PiecewiseConstantIntensity& intensity, double now,
    std::size_t num_queries, std::size_t num_paths,
    const stats::DurationDistribution& pending, stats::Rng* rng,
    std::size_t skip = 0);

}  // namespace rs::core
