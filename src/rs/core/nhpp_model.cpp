#include "rs/core/nhpp_model.hpp"

#include <cmath>

#include "rs/linalg/difference_ops.hpp"
#include "rs/linalg/vector_ops.hpp"

namespace rs::core {

NhppModel::NhppModel(NhppConfig config, std::vector<double> log_intensity)
    : config_(config), r_(std::move(log_intensity)) {}

std::vector<double> NhppModel::Intensity() const { return linalg::Exp(r_); }

Result<workload::PiecewiseConstantIntensity> NhppModel::ToIntensity() const {
  if (r_.empty()) return Status::Invalid("NhppModel: empty model");
  return workload::PiecewiseConstantIntensity::Make(Intensity(), config_.dt);
}

Result<double> NhppModel::Loss(const std::vector<double>& counts) const {
  if (counts.size() != r_.size()) {
    return Status::Invalid("NhppModel::Loss: counts/model size mismatch");
  }
  double loss = 0.0;
  for (std::size_t t = 0; t < r_.size(); ++t) {
    loss += -counts[t] * r_[t] + config_.dt * std::exp(r_[t]);
  }
  linalg::Vec d2r;
  linalg::ApplyD2(r_, &d2r);
  loss += config_.beta1 * linalg::Norm1(d2r);
  if (config_.period > 0 && config_.period < r_.size()) {
    linalg::Vec dlr;
    linalg::ApplyDL(r_, config_.period, &dlr);
    loss += 0.5 * config_.beta2 * linalg::Dot(dlr, dlr);
  }
  return loss;
}

}  // namespace rs::core
