#include "rs/core/kappa.hpp"

#include <algorithm>
#include <vector>

#include "rs/stats/empirical.hpp"
#include "rs/stats/special_functions.hpp"

namespace rs::core {

Result<std::size_t> ComputeKappaDeterministicTau(double alpha,
                                                 double lambda_bar, double tau,
                                                 std::size_t max_kappa) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (tau < 0.0) return Status::Invalid("ComputeKappa: tau must be >= 0");
  const double threshold = lambda_bar * tau;
  std::size_t kappa = 0;
  for (std::size_t i = 1; i <= max_kappa; ++i) {
    RS_ASSIGN_OR_RETURN(const double q,
                        stats::GammaQuantile(static_cast<double>(i), 1.0, alpha));
    if (q < threshold) {
      kappa = i;
    } else {
      break;  // The quantile is increasing in i: no later i can qualify.
    }
  }
  return kappa;
}

Result<std::size_t> ComputeKappaBinarySearch(double alpha, double lambda_bar,
                                             double tau,
                                             std::size_t max_kappa) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (tau < 0.0) return Status::Invalid("ComputeKappa: tau must be >= 0");
  const double threshold = lambda_bar * tau;
  auto below = [&](std::size_t i) -> Result<bool> {
    RS_ASSIGN_OR_RETURN(const double q,
                        stats::GammaQuantile(static_cast<double>(i), 1.0, alpha));
    return q < threshold;
  };
  RS_ASSIGN_OR_RETURN(const bool first_below, below(1));
  if (!first_below) return static_cast<std::size_t>(0);
  // Invariant: quantile(lo) < threshold <= quantile(hi) (monotone in i).
  std::size_t lo = 1, hi = 2;
  for (;;) {
    if (hi > max_kappa) return max_kappa;
    RS_ASSIGN_OR_RETURN(const bool b, below(hi));
    if (!b) break;
    lo = hi;
    hi *= 2;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    RS_ASSIGN_OR_RETURN(const bool b, below(mid));
    if (b) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// Sample-paths per RNG substream in ComputeKappaMonteCarlo. Fixed — the
/// substream layout (and therefore the result) must not depend on how many
/// workers execute the chunks.
constexpr std::size_t kKappaChunk = 256;

/// Max i-steps advanced per fork/join round: amortizes the pool barrier
/// across many quantile checks. Blocks ramp geometrically from 1 so a small
/// κ stops after ~κ steps of sampling instead of a full block; the ramp is
/// fixed (never pool-dependent) and block boundaries do not affect the
/// per-chunk draw order, so results stay byte-identical.
constexpr std::size_t kKappaBlock = 64;

}  // namespace

Result<std::size_t> ComputeKappaMonteCarlo(
    stats::Rng* rng, double alpha, double lambda_bar,
    const stats::DurationDistribution& pending, std::size_t num_samples,
    std::size_t max_kappa, common::ThreadPool* pool) {
  if (rng == nullptr) return Status::Invalid("ComputeKappa: null rng");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (num_samples == 0) {
    return Status::Invalid("ComputeKappa: num_samples must be >= 1");
  }
  // One independent substream per fixed chunk of paths, derived serially
  // from the caller's generator: every pool size draws identical numbers.
  const std::size_t chunks = (num_samples + kKappaChunk - 1) / kKappaChunk;
  std::vector<stats::Rng> chunk_rngs;
  chunk_rngs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) chunk_rngs.push_back(rng->Split());

  std::vector<double> gamma(num_samples, 0.0);
  // stat[step * num_samples + r]: the per-i statistic for a whole block.
  std::vector<double> stat(kKappaBlock * num_samples);
  std::vector<double> scratch(num_samples);
  std::size_t kappa = 0;
  std::size_t ramp = 1;
  for (std::size_t block_start = 1; block_start <= max_kappa;
       block_start += ramp, ramp = std::min(ramp * 4, kKappaBlock)) {
    const std::size_t block_len = std::min(ramp, max_kappa - block_start + 1);
    common::ParallelForChunks(
        pool, num_samples, kKappaChunk,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          stats::Rng& crng = chunk_rngs[c];
          for (std::size_t step = 0; step < block_len; ++step) {
            double* row = stat.data() + step * num_samples;
            for (std::size_t r = begin; r < end; ++r) {
              gamma[r] += stats::SampleExponentialZiggurat(&crng, 1.0);
              row[r] = gamma[r] / lambda_bar - pending.Sample(&crng);
            }
          }
        });
    for (std::size_t step = 0; step < block_len; ++step) {
      std::copy(stat.begin() + static_cast<std::ptrdiff_t>(step * num_samples),
                stat.begin() +
                    static_cast<std::ptrdiff_t>((step + 1) * num_samples),
                scratch.begin());
      RS_ASSIGN_OR_RETURN(const double q,
                          stats::QuantileInPlace(&scratch, alpha));
      if (q < 0.0) {
        kappa = block_start + step;
      } else {
        return kappa;
      }
    }
  }
  return kappa;
}

}  // namespace rs::core
