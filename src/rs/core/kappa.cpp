#include "rs/core/kappa.hpp"

#include <algorithm>
#include <vector>

#include "rs/stats/empirical.hpp"
#include "rs/stats/special_functions.hpp"

namespace rs::core {

Result<std::size_t> ComputeKappaDeterministicTau(double alpha,
                                                 double lambda_bar, double tau,
                                                 std::size_t max_kappa) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (tau < 0.0) return Status::Invalid("ComputeKappa: tau must be >= 0");
  const double threshold = lambda_bar * tau;
  std::size_t kappa = 0;
  for (std::size_t i = 1; i <= max_kappa; ++i) {
    RS_ASSIGN_OR_RETURN(const double q,
                        stats::GammaQuantile(static_cast<double>(i), 1.0, alpha));
    if (q < threshold) {
      kappa = i;
    } else {
      break;  // The quantile is increasing in i: no later i can qualify.
    }
  }
  return kappa;
}

Result<std::size_t> ComputeKappaBinarySearch(double alpha, double lambda_bar,
                                             double tau,
                                             std::size_t max_kappa) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (tau < 0.0) return Status::Invalid("ComputeKappa: tau must be >= 0");
  const double threshold = lambda_bar * tau;
  auto below = [&](std::size_t i) -> Result<bool> {
    RS_ASSIGN_OR_RETURN(const double q,
                        stats::GammaQuantile(static_cast<double>(i), 1.0, alpha));
    return q < threshold;
  };
  RS_ASSIGN_OR_RETURN(const bool first_below, below(1));
  if (!first_below) return static_cast<std::size_t>(0);
  // Invariant: quantile(lo) < threshold <= quantile(hi) (monotone in i).
  std::size_t lo = 1, hi = 2;
  for (;;) {
    if (hi > max_kappa) return max_kappa;
    RS_ASSIGN_OR_RETURN(const bool b, below(hi));
    if (!b) break;
    lo = hi;
    hi *= 2;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    RS_ASSIGN_OR_RETURN(const bool b, below(mid));
    if (b) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::size_t> ComputeKappaMonteCarlo(
    stats::Rng* rng, double alpha, double lambda_bar,
    const stats::DurationDistribution& pending, std::size_t num_samples,
    std::size_t max_kappa) {
  if (rng == nullptr) return Status::Invalid("ComputeKappa: null rng");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("ComputeKappa: alpha must lie in (0, 1)");
  }
  if (!(lambda_bar > 0.0)) {
    return Status::Invalid("ComputeKappa: lambda_bar must be > 0");
  }
  if (num_samples == 0) {
    return Status::Invalid("ComputeKappa: num_samples must be >= 1");
  }
  std::vector<double> gamma(num_samples, 0.0);
  std::vector<double> stat(num_samples);
  std::size_t kappa = 0;
  for (std::size_t i = 1; i <= max_kappa; ++i) {
    for (std::size_t r = 0; r < num_samples; ++r) {
      gamma[r] += stats::SampleExponential(rng, 1.0);
      stat[r] = gamma[r] / lambda_bar - pending.Sample(rng);
    }
    RS_ASSIGN_OR_RETURN(const double q, stats::Quantile(stat, alpha));
    if (q < 0.0) {
      kappa = i;
    } else {
      break;
    }
  }
  return kappa;
}

}  // namespace rs::core
