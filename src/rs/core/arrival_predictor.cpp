#include "rs/core/arrival_predictor.hpp"

#include <algorithm>

#include "rs/common/logging.hpp"

namespace rs::core {

ArrivalPathSampler::ArrivalPathSampler(
    const workload::PiecewiseConstantIntensity* intensity, double now,
    std::size_t num_paths, stats::Rng* rng)
    : intensity_(intensity), rng_(rng), now_(now), gamma_(num_paths, 0.0) {
  RS_CHECK(intensity != nullptr && rng != nullptr && num_paths >= 1)
      << "ArrivalPathSampler: invalid arguments";
  base_ = intensity_->Cumulative(now);
}

void ArrivalPathSampler::Skip(std::size_t count) {
  if (count == 0) return;
  for (double& g : gamma_) {
    g += stats::SampleGamma(rng_, static_cast<double>(count), 1.0);
  }
}

Result<std::vector<double>> ArrivalPathSampler::NextQuery() {
  std::vector<double> xi(gamma_.size());
  for (std::size_t r = 0; r < gamma_.size(); ++r) {
    gamma_[r] += stats::SampleExponential(rng_, 1.0);
    RS_ASSIGN_OR_RETURN(const double t,
                        intensity_->InverseCumulative(base_ + gamma_[r]));
    xi[r] = std::max(0.0, t - now_);
  }
  return xi;
}

Result<std::vector<McSamples>> PredictUpcomingQueries(
    const workload::PiecewiseConstantIntensity& intensity, double now,
    std::size_t num_queries, std::size_t num_paths,
    const stats::DurationDistribution& pending, stats::Rng* rng,
    std::size_t skip) {
  if (rng == nullptr) return Status::Invalid("PredictUpcomingQueries: null rng");
  if (num_queries == 0 || num_paths == 0) {
    return Status::Invalid("PredictUpcomingQueries: counts must be >= 1");
  }
  ArrivalPathSampler sampler(&intensity, now, num_paths, rng);
  sampler.Skip(skip);
  std::vector<McSamples> out;
  out.reserve(num_queries);
  for (std::size_t j = 0; j < num_queries; ++j) {
    McSamples s;
    RS_ASSIGN_OR_RETURN(s.xi, sampler.NextQuery());
    s.tau.resize(num_paths);
    for (std::size_t r = 0; r < num_paths; ++r) {
      s.tau[r] = pending.Sample(rng);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace rs::core
