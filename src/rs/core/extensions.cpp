#include "rs/core/extensions.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"
#include "rs/core/arrival_predictor.hpp"
#include "rs/core/decision.hpp"

namespace rs::core {

NaiveBatchScaler::NaiveBatchScaler(workload::PiecewiseConstantIntensity forecast,
                                   stats::DurationDistribution pending,
                                   NaiveBatchOptions options)
    : forecast_(std::move(forecast)),
      pending_(pending),
      options_(options),
      rng_(options.seed) {
  RS_CHECK(options_.batch >= 1 && options_.mc_samples >= 1)
      << "NaiveBatchScaler: batch and mc_samples must be >= 1";
}

sim::ScalingAction NaiveBatchScaler::Initialize(const sim::SimContext& ctx) {
  return PlanBatch(ctx.now);
}

sim::ScalingAction NaiveBatchScaler::OnQueryArrival(const sim::SimContext& ctx,
                                                    bool cold_start) {
  (void)cold_start;
  // The defining defect: replan only after the whole batch is consumed.
  if (ctx.Outstanding() > 0) return {};
  return PlanBatch(ctx.now);
}

sim::ScalingAction NaiveBatchScaler::PlanBatch(double now) {
  sim::ScalingAction action;
  auto samples = PredictUpcomingQueries(forecast_, now, options_.batch,
                                        options_.mc_samples, pending_, &rng_);
  if (!samples.ok()) {
    RS_LOG(Warning) << "NaiveBatchScaler: prediction failed: "
                    << samples.status().ToString();
    return action;
  }
  for (const auto& s : *samples) {
    auto decision = SolveHpConstrained(s, options_.alpha);
    if (!decision.ok()) break;
    action.creation_times.push_back(now + decision->creation_time);
  }
  return action;
}

MeanRateScaler::MeanRateScaler(workload::PiecewiseConstantIntensity forecast,
                               stats::DurationDistribution pending,
                               MeanRateOptions options)
    : forecast_(std::move(forecast)), pending_(pending), options_(options) {
  RS_CHECK(options_.planning_interval > 0.0 && options_.depth >= 1)
      << "MeanRateScaler: invalid options";
}

sim::ScalingAction MeanRateScaler::OnPlanningTick(const sim::SimContext& ctx) {
  sim::ScalingAction action;
  const double now = ctx.now;
  const std::size_t outstanding = ctx.Outstanding();
  if (outstanding >= options_.depth) return action;
  const double base = forecast_.Cumulative(now);
  const double mean_pending = pending_.Mean();
  for (std::size_t j = outstanding + 1; j <= options_.depth; ++j) {
    // "Expected" arrival of the j-th upcoming query: the time by which the
    // integrated intensity accumulates j — a mean estimate with no
    // uncertainty quantification.
    auto t = forecast_.InverseCumulative(base + static_cast<double>(j));
    if (!t.ok()) break;
    action.creation_times.push_back(
        std::max(now, t.ValueOrDie() - mean_pending));
  }
  return action;
}

RefittingPolicy::RefittingPolicy(workload::Trace training,
                                 stats::DurationDistribution pending,
                                 RefittingOptions options)
    : training_(std::move(training)), pending_(pending), options_(options) {
  RS_CHECK(options_.refit_interval > 0.0)
      << "RefittingPolicy: refit_interval must be > 0";
}

Status RefittingPolicy::Refit(double now,
                              const std::vector<double>& observed_arrivals) {
  // Extended history: the original training window plus everything observed
  // since simulation start (shifted onto the training clock).
  workload::Trace extended = training_;
  const double offset = training_.horizon();
  for (double t : observed_arrivals) {
    extended.Append({t + offset, 0.0});
  }
  extended.set_horizon(offset + now);
  extended.SortByArrival();

  PipelineOptions pipeline = options_.pipeline;
  // The forecast must cover the remaining replay; callers set
  // pipeline.forecast_horizon to at least the test horizon and we keep it.
  RS_ASSIGN_OR_RETURN(auto trained, TrainRobustScaler(extended, pipeline));

  SequentialScalerOptions scaler = options_.scaler;
  scaler.forecast_origin = now;  // Forecast local time 0 == sim time `now`.
  delegate_ = std::make_unique<RobustScalerPolicy>(trained.forecast, pending_,
                                                   scaler);
  last_refit_ = now;
  ++refit_count_;
  return Status::OK();
}

sim::ScalingAction RefittingPolicy::Initialize(const sim::SimContext& ctx) {
  const Status status = Refit(ctx.now, {});
  if (!status.ok()) {
    RS_LOG(Warning) << "RefittingPolicy: initial fit failed: "
                    << status.ToString();
    return {};
  }
  return delegate_->Initialize(ctx);
}

sim::ScalingAction RefittingPolicy::OnPlanningTick(const sim::SimContext& ctx) {
  if (ctx.now - last_refit_ >= options_.refit_interval &&
      ctx.arrival_history != nullptr) {
    const Status status = Refit(ctx.now, *ctx.arrival_history);
    if (!status.ok()) {
      RS_LOG(Warning) << "RefittingPolicy: refit failed (keeping previous "
                         "model): "
                      << status.ToString();
    }
  }
  if (delegate_ == nullptr) return {};
  return delegate_->OnPlanningTick(ctx);
}

}  // namespace rs::core
