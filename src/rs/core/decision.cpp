#include "rs/core/decision.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rs/common/kernels.hpp"
#include "rs/common/logging.hpp"
#include "rs/stats/empirical.hpp"

namespace rs::core {

namespace {

Status ValidateSamples(const McSamples& samples) {
  if (samples.xi.empty() || samples.xi.size() != samples.tau.size()) {
    return Status::Invalid("decision: xi/tau samples must be non-empty and equal-sized");
  }
  return Status::OK();
}

/// Ê(+∞) = mean(τ), accumulated in sample order — shared by the reference
/// and kernel RT solvers so their unbounded checks agree bitwise.
double MeanTau(const McSamples& samples) {
  const double inv_n = 1.0 / static_cast<double>(samples.tau.size());
  double e_max = 0.0;
  for (const double t : samples.tau) e_max += t * inv_n;
  return e_max;
}

/// \brief The Algorithm 3 sweep over breakpoints delivered in ascending
///        (x, then +1/R before −1/R) order by `next`.
///
/// `next` returns false when exhausted, otherwise fills (x, slope_delta).
/// Factoring the sweep out guarantees the reference (sorted 2R records) and
/// the kernel (merge of two sorted families) paths run the exact same
/// floating-point sequence, which is what makes their decisions bitwise
/// equal.
template <typename NextBreakpoint>
Decision SweepRtBreakpoints(double rt_excess, NextBreakpoint&& next) {
  double x = 0.0, delta = 0.0;
  const bool more = next(&x, &delta);
  RS_DCHECK(more);
  (void)more;
  double value = 0.0;  // Ê at the previous breakpoint.
  double slope = 0.0;
  double prev_x = x;
  do {
    const double next_value = value + slope * (x - prev_x);
    if (next_value >= rt_excess && slope > 0.0) {
      Decision d;
      d.creation_time = prev_x + (rt_excess - value) / slope;
      d.feasible = d.creation_time >= 0.0;
      d.creation_time = std::max(d.creation_time, 0.0);
      return d;
    }
    value = next_value;
    slope += delta;
    prev_x = x;
  } while (next(&x, &delta));
  // rt_excess < Ê(+∞) guarantees the sweep crosses the target; reaching
  // here means only numerical ties — use the last breakpoint.
  Decision d;
  d.creation_time = std::max(prev_x, 0.0);
  d.feasible = prev_x >= 0.0;
  return d;
}

/// \brief The Eq. 7 solve on an ascending-sorted slack array: immediate
///        creation when Ĝ(0) fits the budget, else the downward sweep from
///        the largest breakpoint. Shared between the reference and kernel
///        cost solvers (bitwise-equal decisions).
Decision SolveCostOnSortedSlack(const std::vector<double>& slack,
                                double idle_budget) {
  const std::size_t n = slack.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Ĝ(0): the idle cost of creating immediately (Eq. 7 first case).
  double g0 = 0.0;
  for (double s : slack) g0 += std::max(s, 0.0) * inv_n;
  Decision d;
  if (g0 <= idle_budget) {
    d.creation_time = 0.0;
    return d;
  }

  // Sweep from the largest breakpoint down: Ĝ(slack[n-1]) = 0, and on
  // [slack[k-1], slack[k]] the slope magnitude is (n-k)/n. Because
  // Ĝ(0) = g0 > idle_budget, the crossing occurs at some x in (0, slack max)
  // before the sweep reaches zero.
  double value = 0.0;  // Ĝ at the current segment's upper end.
  for (std::size_t k = n; k-- > 0;) {
    const double seg_hi = slack[k];
    if (seg_hi <= 0.0) break;  // Crossing can only be at x > 0.
    const double seg_lo = std::max(k > 0 ? slack[k - 1] : 0.0, 0.0);
    const double slope_mag = static_cast<double>(n - k) * inv_n;
    const double value_lo = value + slope_mag * (seg_hi - seg_lo);
    if (value_lo >= idle_budget) {
      d.creation_time = seg_hi - (idle_budget - value) / slope_mag;
      return d;
    }
    value = value_lo;
  }
  // Numerically unreachable (g0 > budget); fall back to immediate creation.
  d.creation_time = 0.0;
  return d;
}

}  // namespace

double EstimateExpectedWait(const McSamples& samples, double x) {
  double acc = 0.0;
  for (std::size_t r = 0; r < samples.xi.size(); ++r) {
    const double gap = std::max(samples.xi[r] - x, 0.0);
    acc += std::max(samples.tau[r] - gap, 0.0);
  }
  return acc / static_cast<double>(samples.xi.size());
}

double EstimateExpectedIdle(const McSamples& samples, double x) {
  double acc = 0.0;
  for (std::size_t r = 0; r < samples.xi.size(); ++r) {
    acc += std::max(samples.xi[r] - samples.tau[r] - x, 0.0);
  }
  return acc / static_cast<double>(samples.xi.size());
}

Result<Decision> SolveHpConstrained(const McSamples& samples, double alpha) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("SolveHpConstrained: alpha must lie in (0, 1)");
  }
  std::vector<double> slack(samples.xi.size());
  for (std::size_t r = 0; r < slack.size(); ++r) {
    slack[r] = samples.xi[r] - samples.tau[r];
  }
  double x_star = 0.0;
  if (common::UseReferenceKernels()) {
    // The reference fallback keeps the pre-optimization full sort so
    // RS_REFERENCE_KERNELS measures the historical cost profile; the value
    // is bitwise-identical to the selection path.
    std::sort(slack.begin(), slack.end());
    RS_ASSIGN_OR_RETURN(x_star, stats::QuantileSorted(slack, alpha));
  } else {
    RS_ASSIGN_OR_RETURN(x_star, stats::QuantileInPlace(&slack, alpha));
  }
  Decision d;
  d.feasible = x_star >= 0.0;
  d.creation_time = std::max(x_star, 0.0);
  return d;
}

Result<Decision> SolveRtConstrained(const McSamples& samples, double rt_excess) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (rt_excess < 0.0) {
    return Status::Invalid("SolveRtConstrained: rt_excess must be >= 0");
  }
  const std::size_t n = samples.xi.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Ê(x) = (1/R) Σ_r (τ_r − (ξ_r − x)+)+ is non-decreasing piecewise linear:
  // the slope gains 1/R when x passes ξ_r − τ_r (the instance starts waiting
  // on sample r) and loses 1/R when x passes ξ_r (sample r's wait saturates
  // at τ_r). Sweep the 2R breakpoints in ascending order, tracking slope and
  // the accumulated value — the sort-and-search of Algorithm 3.
  if (rt_excess >= MeanTau(samples)) {
    // Constraint slack for all x: never need a proactive creation.
    Decision d;
    d.unbounded = true;
    d.creation_time = std::numeric_limits<double>::infinity();
    return d;
  }
  struct Breakpoint {
    double x;
    double slope_delta;
  };
  std::vector<Breakpoint> bps;
  bps.reserve(2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    bps.push_back({samples.xi[r] - samples.tau[r], inv_n});
    bps.push_back({samples.xi[r], -inv_n});
  }
  // Ties broken toward the +1/R ascent point so the sweep visits the exact
  // breakpoint sequence DecisionKernel's merge produces.
  std::sort(bps.begin(), bps.end(),
            [](const Breakpoint& a, const Breakpoint& b) {
              return a.x < b.x ||
                     (a.x == b.x && a.slope_delta > b.slope_delta);
            });
  std::size_t i = 0;
  return SweepRtBreakpoints(rt_excess, [&bps, &i](double* x, double* delta) {
    if (i == bps.size()) return false;
    *x = bps[i].x;
    *delta = bps[i].slope_delta;
    ++i;
    return true;
  });
}

Result<Decision> SolveCostConstrained(const McSamples& samples,
                                      double idle_budget) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (idle_budget < 0.0) {
    return Status::Invalid("SolveCostConstrained: idle_budget must be >= 0");
  }
  const std::size_t n = samples.xi.size();
  // Ĝ(x) = (1/R) Σ_r (ξ_r − τ_r − x)+ is non-increasing piecewise linear
  // with slope −(#{r : ξ_r − τ_r > x})/R; breakpoints at ξ_r − τ_r.
  std::vector<double> slack(n);
  for (std::size_t r = 0; r < n; ++r) {
    slack[r] = samples.xi[r] - samples.tau[r];
  }
  std::sort(slack.begin(), slack.end());
  return SolveCostOnSortedSlack(slack, idle_budget);
}

// ---------------------------------------------------------------------------
// DecisionKernel
// ---------------------------------------------------------------------------

void DecisionKernel::Bind(const McSamples& samples) {
  samples_ = &samples;
  xi_ascending_ = false;
  slack_ready_ = false;
  sorted_slack_ready_ = false;
  sorted_xi_ready_ = false;
  prefixes_ready_ = false;
  uniform_tau_ = -1;
}

void DecisionKernel::BindAscendingXi(const McSamples& samples) {
  Bind(samples);
  xi_ascending_ = true;
}

bool DecisionKernel::UniformTau() const {
  if (uniform_tau_ < 0) {
    const auto& tau = samples_->tau;
    uniform_tau_ = 1;
    for (std::size_t r = 1; r < tau.size(); ++r) {
      if (tau[r] != tau[0]) {
        uniform_tau_ = 0;
        break;
      }
    }
  }
  return uniform_tau_ == 1;
}

Status DecisionKernel::EnsureBound() const {
  if (samples_ == nullptr) {
    return Status::Invalid("DecisionKernel: no samples bound");
  }
  return ValidateSamples(*samples_);
}

void DecisionKernel::EnsureSlack() {
  if (slack_ready_) return;
  const std::size_t n = samples_->xi.size();
  slack_.resize(n);
  const double* xi = samples_->xi.data();
  const double* tau = samples_->tau.data();
  for (std::size_t r = 0; r < n; ++r) slack_[r] = xi[r] - tau[r];
  slack_ready_ = true;
}

void DecisionKernel::EnsureSortedSlack() {
  if (sorted_slack_ready_) return;
  // Constant τ with pre-sorted ξ: the sorted slack is sorted ξ − τ applied
  // element-wise — the exact doubles a pairwise-subtract-then-sort yields,
  // with no comparison sort at all.
  if (xi_ascending_ && UniformTau()) {
    EnsureSortedXi();
    const std::size_t n = sorted_xi_.size();
    slack_.resize(n);
    const double tau = samples_->tau.empty() ? 0.0 : samples_->tau[0];
    for (std::size_t i = 0; i < n; ++i) slack_[i] = sorted_xi_[i] - tau;
    slack_ready_ = true;  // (Sorted counts as filled.)
    sorted_slack_ready_ = true;
    return;
  }
  EnsureSlack();
  common::RadixSortAscending(slack_.data(), slack_.size(), &radix_);
  sorted_slack_ready_ = true;
}

void DecisionKernel::EnsureSortedXi() {
  if (sorted_xi_ready_) return;
  const std::size_t n = samples_->xi.size();
  sorted_xi_.resize(n);
  std::copy(samples_->xi.begin(), samples_->xi.end(), sorted_xi_.begin());
  if (!xi_ascending_) {
    common::RadixSortAscending(sorted_xi_.data(), n, &radix_);
  }
  sorted_xi_ready_ = true;
}

void DecisionKernel::EnsurePrefixes() {
  if (prefixes_ready_) return;
  EnsureSortedSlack();
  EnsureSortedXi();
  const std::size_t n = slack_.size();
  slack_prefix_.resize(n + 1);
  xi_prefix_.resize(n + 1);
  slack_prefix_[0] = 0.0;
  xi_prefix_[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    slack_prefix_[i + 1] = slack_prefix_[i] + slack_[i];
    xi_prefix_[i + 1] = xi_prefix_[i] + sorted_xi_[i];
  }
  prefixes_ready_ = true;
}

Result<Decision> DecisionKernel::SolveHp(double alpha) {
  RS_RETURN_NOT_OK(EnsureBound());
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("SolveHpConstrained: alpha must lie in (0, 1)");
  }
  double x_star = 0.0;
  if (sorted_slack_ready_) {
    RS_ASSIGN_OR_RETURN(x_star, stats::QuantileSorted(slack_, alpha));
  } else {
    // Selection on a scratch copy: O(R) and leaves slack_ usable (still
    // unsorted) for a later solver on the same bind.
    EnsureSlack();
    scratch_.resize(slack_.size());
    std::copy(slack_.begin(), slack_.end(), scratch_.begin());
    RS_ASSIGN_OR_RETURN(x_star, stats::QuantileInPlace(&scratch_, alpha));
  }
  Decision d;
  d.feasible = x_star >= 0.0;
  d.creation_time = std::max(x_star, 0.0);
  return d;
}

Result<Decision> DecisionKernel::SolveRt(double rt_excess) {
  RS_RETURN_NOT_OK(EnsureBound());
  if (rt_excess < 0.0) {
    return Status::Invalid("SolveRtConstrained: rt_excess must be >= 0");
  }
  if (rt_excess >= MeanTau(*samples_)) {
    Decision d;
    d.unbounded = true;
    d.creation_time = std::numeric_limits<double>::infinity();
    return d;
  }
  EnsureSortedSlack();
  EnsureSortedXi();
  // Merge the two ascending breakpoint families; a slack (ascent) point
  // wins ties, matching the reference sort's tie-break.
  const std::size_t n = slack_.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::size_t i = 0, j = 0;
  return SweepRtBreakpoints(
      rt_excess, [this, n, inv_n, &i, &j](double* x, double* delta) {
        if (i < n && (j == n || slack_[i] <= sorted_xi_[j])) {
          *x = slack_[i];
          *delta = inv_n;
          ++i;
          return true;
        }
        if (j < n) {
          *x = sorted_xi_[j];
          *delta = -inv_n;
          ++j;
          return true;
        }
        return false;
      });
}

Result<Decision> DecisionKernel::SolveCost(double idle_budget) {
  RS_RETURN_NOT_OK(EnsureBound());
  if (idle_budget < 0.0) {
    return Status::Invalid("SolveCostConstrained: idle_budget must be >= 0");
  }
  EnsureSortedSlack();
  return SolveCostOnSortedSlack(slack_, idle_budget);
}

double DecisionKernel::ExpectedWait(double x) {
  RS_DCHECK(samples_ != nullptr && !samples_->xi.empty());
  EnsurePrefixes();
  // Split (τ − (ξ − x)+)+ = (x − slack)·[slack <= x] − (x − ξ)·[ξ <= x]
  // (valid for τ >= 0, which makes slack <= ξ): both pieces are prefix-sum
  // queries over a sorted array.
  const std::size_t n = slack_.size();
  const auto cnt_s = static_cast<std::size_t>(
      std::upper_bound(slack_.begin(), slack_.end(), x) - slack_.begin());
  const auto cnt_x = static_cast<std::size_t>(
      std::upper_bound(sorted_xi_.begin(), sorted_xi_.end(), x) -
      sorted_xi_.begin());
  const double ascent = static_cast<double>(cnt_s) * x - slack_prefix_[cnt_s];
  const double saturated = static_cast<double>(cnt_x) * x - xi_prefix_[cnt_x];
  return (ascent - saturated) / static_cast<double>(n);
}

double DecisionKernel::ExpectedIdle(double x) {
  RS_DCHECK(samples_ != nullptr && !samples_->xi.empty());
  EnsurePrefixes();
  const std::size_t n = slack_.size();
  const auto cnt = static_cast<std::size_t>(
      std::upper_bound(slack_.begin(), slack_.end(), x) - slack_.begin());
  const double above_sum = slack_prefix_[n] - slack_prefix_[cnt];
  return (above_sum - static_cast<double>(n - cnt) * x) /
         static_cast<double>(n);
}

std::size_t DecisionKernel::WorkspaceBytes() const {
  return (slack_.capacity() + slack_prefix_.capacity() +
          sorted_xi_.capacity() + xi_prefix_.capacity() +
          scratch_.capacity()) *
             sizeof(double) +
         (radix_.keys.capacity() + radix_.tmp.capacity()) *
             sizeof(std::uint64_t);
}

}  // namespace rs::core
