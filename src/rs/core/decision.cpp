#include "rs/core/decision.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rs/stats/empirical.hpp"

namespace rs::core {

namespace {

Status ValidateSamples(const McSamples& samples) {
  if (samples.xi.empty() || samples.xi.size() != samples.tau.size()) {
    return Status::Invalid("decision: xi/tau samples must be non-empty and equal-sized");
  }
  return Status::OK();
}

}  // namespace

double EstimateExpectedWait(const McSamples& samples, double x) {
  double acc = 0.0;
  for (std::size_t r = 0; r < samples.xi.size(); ++r) {
    const double gap = std::max(samples.xi[r] - x, 0.0);
    acc += std::max(samples.tau[r] - gap, 0.0);
  }
  return acc / static_cast<double>(samples.xi.size());
}

double EstimateExpectedIdle(const McSamples& samples, double x) {
  double acc = 0.0;
  for (std::size_t r = 0; r < samples.xi.size(); ++r) {
    acc += std::max(samples.xi[r] - samples.tau[r] - x, 0.0);
  }
  return acc / static_cast<double>(samples.xi.size());
}

Result<Decision> SolveHpConstrained(const McSamples& samples, double alpha) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::Invalid("SolveHpConstrained: alpha must lie in (0, 1)");
  }
  std::vector<double> slack(samples.xi.size());
  for (std::size_t r = 0; r < slack.size(); ++r) {
    slack[r] = samples.xi[r] - samples.tau[r];
  }
  RS_ASSIGN_OR_RETURN(const double x_star, stats::Quantile(std::move(slack), alpha));
  Decision d;
  d.feasible = x_star >= 0.0;
  d.creation_time = std::max(x_star, 0.0);
  return d;
}

Result<Decision> SolveRtConstrained(const McSamples& samples, double rt_excess) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (rt_excess < 0.0) {
    return Status::Invalid("SolveRtConstrained: rt_excess must be >= 0");
  }
  const std::size_t n = samples.xi.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Ê(x) = (1/R) Σ_r (τ_r − (ξ_r − x)+)+ is non-decreasing piecewise linear:
  // the slope gains 1/R when x passes ξ_r − τ_r (the instance starts waiting
  // on sample r) and loses 1/R when x passes ξ_r (sample r's wait saturates
  // at τ_r). Sweep the 2R breakpoints in ascending order, tracking slope and
  // the accumulated value — the sort-and-search of Algorithm 3.
  struct Breakpoint {
    double x;
    double slope_delta;
  };
  std::vector<Breakpoint> bps;
  bps.reserve(2 * n);
  double e_max = 0.0;  // Ê(+∞) = mean(τ).
  for (std::size_t r = 0; r < n; ++r) {
    bps.push_back({samples.xi[r] - samples.tau[r], inv_n});
    bps.push_back({samples.xi[r], -inv_n});
    e_max += samples.tau[r] * inv_n;
  }
  if (rt_excess >= e_max) {
    // Constraint slack for all x: never need a proactive creation.
    Decision d;
    d.unbounded = true;
    d.creation_time = std::numeric_limits<double>::infinity();
    return d;
  }
  std::sort(bps.begin(), bps.end(),
            [](const Breakpoint& a, const Breakpoint& b) { return a.x < b.x; });

  double value = 0.0;  // Ê at the previous breakpoint.
  double slope = 0.0;
  double prev_x = bps.front().x;
  for (const auto& bp : bps) {
    const double next_value = value + slope * (bp.x - prev_x);
    if (next_value >= rt_excess && slope > 0.0) {
      Decision d;
      d.creation_time = prev_x + (rt_excess - value) / slope;
      d.feasible = d.creation_time >= 0.0;
      d.creation_time = std::max(d.creation_time, 0.0);
      return d;
    }
    value = next_value;
    slope += bp.slope_delta;
    prev_x = bp.x;
  }
  // rt_excess < e_max guarantees the sweep crosses the target; reaching
  // here means only numerical ties — use the last breakpoint.
  Decision d;
  d.creation_time = std::max(prev_x, 0.0);
  d.feasible = prev_x >= 0.0;
  return d;
}

Result<Decision> SolveCostConstrained(const McSamples& samples,
                                      double idle_budget) {
  RS_RETURN_NOT_OK(ValidateSamples(samples));
  if (idle_budget < 0.0) {
    return Status::Invalid("SolveCostConstrained: idle_budget must be >= 0");
  }
  const std::size_t n = samples.xi.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Ĝ(x) = (1/R) Σ_r (ξ_r − τ_r − x)+ is non-increasing piecewise linear
  // with slope −(#{r : ξ_r − τ_r > x})/R; breakpoints at ξ_r − τ_r.
  std::vector<double> slack(n);
  for (std::size_t r = 0; r < n; ++r) {
    slack[r] = samples.xi[r] - samples.tau[r];
  }
  std::sort(slack.begin(), slack.end());

  // Ĝ(0): the idle cost of creating immediately (Eq. 7 first case).
  double g0 = 0.0;
  for (double s : slack) g0 += std::max(s, 0.0) * inv_n;
  Decision d;
  if (g0 <= idle_budget) {
    d.creation_time = 0.0;
    return d;
  }

  // Sweep from the largest breakpoint down: Ĝ(slack[n-1]) = 0, and on
  // [slack[k-1], slack[k]] the slope magnitude is (n-k)/n. Because
  // Ĝ(0) = g0 > idle_budget, the crossing occurs at some x in (0, slack max)
  // before the sweep reaches zero.
  double value = 0.0;  // Ĝ at the current segment's upper end.
  for (std::size_t k = n; k-- > 0;) {
    const double seg_hi = slack[k];
    if (seg_hi <= 0.0) break;  // Crossing can only be at x > 0.
    const double seg_lo = std::max(k > 0 ? slack[k - 1] : 0.0, 0.0);
    const double slope_mag = static_cast<double>(n - k) * inv_n;
    const double value_lo = value + slope_mag * (seg_hi - seg_lo);
    if (value_lo >= idle_budget) {
      d.creation_time = seg_hi - (idle_budget - value) / slope_mag;
      return d;
    }
    value = value_lo;
  }
  // Numerically unreachable (g0 > budget); fall back to immediate creation.
  d.creation_time = 0.0;
  return d;
}

}  // namespace rs::core
