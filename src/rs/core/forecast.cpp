#include "rs/core/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "rs/stats/empirical.hpp"

namespace rs::core {

Result<workload::PiecewiseConstantIntensity> ForecastIntensityFromSeries(
    const std::vector<double>& intensity, double dt, std::size_t period,
    std::size_t horizon_bins, const ForecastOptions& options) {
  const std::size_t t = intensity.size();
  if (t == 0) return Status::Invalid("ForecastIntensity: empty history");
  if (horizon_bins == 0) {
    return Status::Invalid("ForecastIntensity: horizon_bins must be >= 1");
  }
  std::vector<double> future(horizon_bins);
  if (period > 0 && period <= t) {
    for (std::size_t h = 0; h < horizon_bins; ++h) {
      // Index T + h wrapped back by whole periods into the final cycle.
      std::size_t idx = (t - period) + (h % period);
      future[h] = intensity[idx];
    }
  } else {
    const std::size_t window = std::min(std::max<std::size_t>(options.level_window, 1), t);
    std::vector<double> tail(intensity.end() - static_cast<std::ptrdiff_t>(window),
                             intensity.end());
    const double level = stats::Mean(tail);
    std::fill(future.begin(), future.end(), level);
  }
  for (double& v : future) v = std::max(v, options.min_rate);
  return workload::PiecewiseConstantIntensity::Make(std::move(future), dt);
}

Result<workload::PiecewiseConstantIntensity> ForecastIntensity(
    const NhppModel& model, std::size_t horizon_bins,
    const ForecastOptions& options) {
  return ForecastIntensityFromSeries(model.Intensity(), model.config().dt,
                                     model.config().period, horizon_bins,
                                     options);
}

}  // namespace rs::core
