/// \file forecast.hpp
/// \brief Module 3 of the framework (Fig. 2): extrapolates the fitted
///        historical intensity into the future — periodic extension when a
///        period was detected, local-level carry-forward otherwise.
#pragma once

#include <cstddef>

#include "rs/common/status.hpp"
#include "rs/core/nhpp_model.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::core {

/// Forecast configuration.
struct ForecastOptions {
  /// With no period, forecast the mean intensity of the trailing
  /// `level_window` bins (a robust "local level").
  std::size_t level_window = 60;
  /// Intensity floor (per second) so cumulative-intensity inversion never
  /// stalls on an exactly-zero tail.
  double min_rate = 1e-8;
};

/// \brief Extends a fitted model `horizon_bins` bins past its training end.
///
/// Periodic case: bin T+h copies the intensity one (or more) whole periods
/// back, λ̂_{T+h} = λ_{T+h−kL} for the smallest k putting the index in
/// range. Aperiodic case: constant at the trailing-window mean.
/// The returned intensity's local time 0 corresponds to the end of the
/// training window.
Result<workload::PiecewiseConstantIntensity> ForecastIntensity(
    const NhppModel& model, std::size_t horizon_bins,
    const ForecastOptions& options = {});

/// Same, but starting from a raw per-bin intensity series (used by tests
/// and by ablations that bypass the NHPP fit).
Result<workload::PiecewiseConstantIntensity> ForecastIntensityFromSeries(
    const std::vector<double>& intensity, double dt, std::size_t period,
    std::size_t horizon_bins, const ForecastOptions& options = {});

}  // namespace rs::core
