#include "rs/core/pipeline.hpp"

#include <cmath>

#include "rs/timeseries/aggregate.hpp"

namespace rs::core {

Result<TrainedPipeline> TrainRobustScaler(const workload::Trace& training,
                                          const PipelineOptions& options) {
  if (training.horizon() <= 0.0) {
    return Status::Invalid("TrainRobustScaler: empty training horizon");
  }
  if (!(options.dt > 0.0)) {
    return Status::Invalid("TrainRobustScaler: dt must be > 0");
  }

  // Module 1a: aggregate events into Q_t; modules 1b–3 run on the counts.
  RS_ASSIGN_OR_RETURN(auto counts,
                      ts::AggregateEvents(training.ArrivalTimes(), options.dt,
                                          training.horizon()));
  return TrainRobustScalerFromCounts(std::move(counts), options);
}

Result<TrainedPipeline> TrainRobustScalerFromCounts(
    ts::CountSeries counts, const PipelineOptions& options,
    const std::vector<double>* warm_start) {
  if (!(counts.dt > 0.0)) {
    return Status::Invalid("TrainRobustScalerFromCounts: dt must be > 0");
  }

  // Module 1b: robust periodicity detection.
  ts::PeriodicityOptions periodicity = options.periodicity;
  if (options.training_pool != nullptr) {
    periodicity.pool = options.training_pool;
  }
  RS_ASSIGN_OR_RETURN(auto period, ts::DetectPeriod(counts, periodicity));

  // Module 2: regularized NHPP fit via ADMM (warm-started when the caller
  // carries the iterate of a previous fit on a prefix of this series).
  NhppConfig config;
  config.dt = counts.dt;
  config.beta1 = options.beta1;
  config.beta2 = options.beta2;
  config.period = period.period;
  AdmmOptions admm = options.admm;
  if (options.training_pool != nullptr) {
    admm.pool = options.training_pool;
  }
  admm.warm_start = warm_start;
  AdmmInfo info;
  RS_ASSIGN_OR_RETURN(auto model, FitNhpp(counts.counts, config, admm, &info));

  // Module 3: extrapolate the intensity past the training window.
  const auto horizon_bins = static_cast<std::size_t>(
      std::ceil(options.forecast_horizon / counts.dt));
  RS_ASSIGN_OR_RETURN(
      auto forecast,
      ForecastIntensity(model, std::max<std::size_t>(horizon_bins, 1),
                        options.forecast));

  TrainedPipeline out;
  out.counts = std::move(counts);
  out.period = period;
  out.model = std::move(model);
  out.admm_info = info;
  out.forecast = std::move(forecast);
  return out;
}

std::unique_ptr<RobustScalerPolicy> MakeRobustScalerPolicy(
    const TrainedPipeline& trained, const stats::DurationDistribution& pending,
    const SequentialScalerOptions& scaler_options) {
  return std::make_unique<RobustScalerPolicy>(trained.forecast, pending,
                                              scaler_options);
}

}  // namespace rs::core
