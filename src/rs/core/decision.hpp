/// \file decision.hpp
/// \brief The per-query scaling-decision solvers of Section VI-B:
///        HP-constrained quantile rule (Eq. 3), RT-constrained
///        sort-and-search (Eq. 5 / Algorithm 3), and the cost-constrained
///        rule (Eq. 7). All operate on Monte Carlo samples of the upcoming
///        arrival time ξ and pending time τ.
#pragma once

#include <vector>

#include "rs/common/status.hpp"

namespace rs::core {

/// Monte Carlo samples for one upcoming query: xi[r] is the sampled arrival
/// time (relative to "now"), tau[r] the sampled instance pending time.
/// Sizes must match and be >= 1.
struct McSamples {
  std::vector<double> xi;
  std::vector<double> tau;
};

/// Decision value for one query: when to create its instance, relative to
/// now. `feasible == false` (HP variant only) means even immediate creation
/// (x = 0) cannot reach the requested level — the caller should create
/// immediately (the clamped decision is in `creation_time`, = 0).
/// `unbounded == true` (RT/cost variants) means the constraint is slack for
/// every x, so no proactive creation is needed at all.
struct Decision {
  double creation_time = 0.0;
  bool feasible = true;
  bool unbounded = false;
};

/// \brief HP-constrained rule (Eq. 3): x* = α-quantile of (ξ − τ).
///
/// \param alpha miss budget, α = 1 − target hitting probability, in (0, 1).
Result<Decision> SolveHpConstrained(const McSamples& samples, double alpha);

/// \brief RT-constrained rule (Eq. 5): the x with
///        Ê[(τ − (ξ − x)+)+] = rt_excess, found by the O(R log R)
///        sort-and-search sweep of Algorithm 3.
///
/// \param rt_excess the waiting-time budget d − µs (>= 0). If it exceeds
///        E[τ] the constraint is slack everywhere → `unbounded`.
Result<Decision> SolveRtConstrained(const McSamples& samples, double rt_excess);

/// \brief Cost-constrained rule (Eq. 7): x* = 0 when Ê[(ξ−τ)+] <= idle
///        budget, otherwise the x with Ê[(ξ − τ − x)+] = idle_budget.
///
/// \param idle_budget B − µτ − µs (>= 0): allowed mean idle time/instance.
Result<Decision> SolveCostConstrained(const McSamples& samples,
                                      double idle_budget);

/// Ê[(τ − (ξ − x)+)+]: the Monte Carlo expected waiting time if the
/// instance is created at x (exposed for tests/verification of Alg. 3).
double EstimateExpectedWait(const McSamples& samples, double x);

/// Ê[(ξ − τ − x)+]: the Monte Carlo expected idle time for creation at x.
double EstimateExpectedIdle(const McSamples& samples, double x);

}  // namespace rs::core
