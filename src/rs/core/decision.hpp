/// \file decision.hpp
/// \brief The per-query scaling-decision solvers of Section VI-B:
///        HP-constrained quantile rule (Eq. 3), RT-constrained
///        sort-and-search (Eq. 5 / Algorithm 3), and the cost-constrained
///        rule (Eq. 7). All operate on Monte Carlo samples of the upcoming
///        arrival time ξ and pending time τ.
///
/// Two forms are provided. The free functions are the reference
/// implementations: allocate, sort, solve — simple enough to audit against
/// the paper. DecisionKernel is the hot-path form: it binds to one sample
/// set, shares a single O(R log R) preprocessing pass (sorted slack ξ−τ,
/// sorted ξ, prefix sums) across the three solvers and the Ê/Ĝ curve
/// queries, and reuses its buffers across bind cycles so a steady planning
/// loop allocates nothing. Every DecisionKernel solver returns a Decision
/// bitwise-identical to its reference free function.
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/radix_sort.hpp"
#include "rs/common/status.hpp"

namespace rs::core {

/// Monte Carlo samples for one upcoming query: xi[r] is the sampled arrival
/// time (relative to "now"), tau[r] the sampled instance pending time.
/// Sizes must match and be >= 1; tau must be >= 0.
struct McSamples {
  std::vector<double> xi;
  std::vector<double> tau;
};

/// Decision value for one query: when to create its instance, relative to
/// now. `feasible == false` (HP variant only) means even immediate creation
/// (x = 0) cannot reach the requested level — the caller should create
/// immediately (the clamped decision is in `creation_time`, = 0).
/// `unbounded == true` (RT/cost variants) means the constraint is slack for
/// every x, so no proactive creation is needed at all.
struct Decision {
  double creation_time = 0.0;
  bool feasible = true;
  bool unbounded = false;
};

/// \brief HP-constrained rule (Eq. 3): x* = α-quantile of (ξ − τ).
///
/// \param alpha miss budget, α = 1 − target hitting probability, in (0, 1).
Result<Decision> SolveHpConstrained(const McSamples& samples, double alpha);

/// \brief RT-constrained rule (Eq. 5): the x with
///        Ê[(τ − (ξ − x)+)+] = rt_excess, found by the O(R log R)
///        sort-and-search sweep of Algorithm 3.
///
/// \param rt_excess the waiting-time budget d − µs (>= 0). If it exceeds
///        E[τ] the constraint is slack everywhere → `unbounded`.
Result<Decision> SolveRtConstrained(const McSamples& samples, double rt_excess);

/// \brief Cost-constrained rule (Eq. 7): x* = 0 when Ê[(ξ−τ)+] <= idle
///        budget, otherwise the x with Ê[(ξ − τ − x)+] = idle_budget.
///
/// \param idle_budget B − µτ − µs (>= 0): allowed mean idle time/instance.
Result<Decision> SolveCostConstrained(const McSamples& samples,
                                      double idle_budget);

/// Ê[(τ − (ξ − x)+)+]: the Monte Carlo expected waiting time if the
/// instance is created at x (exposed for tests/verification of Alg. 3).
double EstimateExpectedWait(const McSamples& samples, double x);

/// Ê[(ξ − τ − x)+]: the Monte Carlo expected idle time for creation at x.
double EstimateExpectedIdle(const McSamples& samples, double x);

/// \brief Allocation-free evaluator over one bound sample set.
///
/// Bind() points the kernel at a sample set without copying it; the sorted
/// views and prefix sums are then built lazily, at most once per bind, in
/// buffers that persist across binds. Solvers match the free functions
/// bitwise; the curve queries ExpectedWait/ExpectedIdle answer arbitrary
/// candidates in O(log R) from the shared prefix sums (they agree with the
/// naive O(R) estimators to floating-point reassociation, not bitwise).
class DecisionKernel {
 public:
  /// Binds `samples` (kept by pointer — caller keeps it alive and unchanged
  /// until the next Bind). Invalidates all previously prepared state.
  void Bind(const McSamples& samples);

  /// Bind, additionally declaring that samples.xi is already ascending (the
  /// batched arrival sampler emits it that way when the original sample
  /// order no longer matters). The kernel then skips its own ξ sort, and —
  /// when τ is constant across samples — derives the sorted slack directly
  /// as sorted ξ − τ, skipping that sort too.
  void BindAscendingXi(const McSamples& samples);

  /// HP rule via order-statistic selection on the slack buffer: O(R)
  /// expected, no sort unless another solver already paid for one.
  Result<Decision> SolveHp(double alpha);

  /// RT rule as a merge-sweep over the two sorted breakpoint families
  /// (slack ascent points ξ−τ, saturation points ξ) — Algorithm 3 without
  /// materializing or sorting the 2R breakpoint records.
  Result<Decision> SolveRt(double rt_excess);

  /// Cost rule on the shared sorted slack.
  Result<Decision> SolveCost(double idle_budget);

  /// Ê[(τ − (ξ − x)+)+] in O(log R) after O(R log R) one-time prep.
  double ExpectedWait(double x);

  /// Ê[(ξ − τ − x)+] in O(log R) after the same prep.
  double ExpectedIdle(double x);

  /// Bytes of scratch retained across binds (buffer capacities) — the
  /// kernel's share of a PlanWorkspace's memory accounting.
  std::size_t WorkspaceBytes() const;

 private:
  Status EnsureBound() const;
  void EnsureSlack();        ///< slack_[r] = ξ_r − τ_r (unsorted).
  void EnsureSortedSlack();  ///< slack_ ascending.
  void EnsureSortedXi();     ///< sorted ξ.
  void EnsurePrefixes();     ///< Prefix sums for the curve queries.
  bool UniformTau() const;   ///< All τ equal (memoized per bind).

  const McSamples* samples_ = nullptr;
  std::vector<double> slack_;         ///< Unsorted until EnsureSortedSlack.
  std::vector<double> slack_prefix_;  ///< slack_prefix_[i] = Σ slack_[0..i).
  std::vector<double> sorted_xi_;
  std::vector<double> xi_prefix_;
  std::vector<double> scratch_;  ///< Selection buffer for SolveHp.
  common::RadixSortScratch radix_;
  bool xi_ascending_ = false;    ///< samples_->xi declared pre-sorted.
  bool slack_ready_ = false;
  bool sorted_slack_ready_ = false;
  bool sorted_xi_ready_ = false;
  bool prefixes_ready_ = false;
  mutable int uniform_tau_ = -1;  ///< −1 unknown, else 0/1.
};

}  // namespace rs::core
