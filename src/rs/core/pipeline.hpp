/// \file pipeline.hpp
/// \brief End-to-end RobustScaler training pipeline (Fig. 2): periodicity
///        detection → NHPP fit (ADMM) → intensity forecast → scaling policy.
///
/// INTERNAL: these free functions are the building blocks behind the public
/// facade in rs/api/api.hpp and are kept as thin delegation targets for it
/// (rs::api::ScalerBuilder / rs::api::TrainPipeline / the strategy
/// registry). New consumers should program against rs::api; this header's
/// signatures may change without notice as the facade evolves.
#pragma once

#include <memory>

#include "rs/common/status.hpp"
#include "rs/core/admm.hpp"
#include "rs/core/forecast.hpp"
#include "rs/core/nhpp_model.hpp"
#include "rs/core/sequential_scaler.hpp"
#include "rs/timeseries/aggregate.hpp"
#include "rs/timeseries/periodicity.hpp"
#include "rs/workload/trace.hpp"

namespace rs::core {

/// Configuration of the full training pipeline.
struct PipelineOptions {
  /// Bin width Δt for the QPS series fed to the model (seconds).
  double dt = 60.0;
  /// Regularization weights of Eq. (1).
  double beta1 = 10.0;
  double beta2 = 50.0;
  /// Periodicity detection configuration (module 1).
  ts::PeriodicityOptions periodicity;
  /// ADMM solver configuration (module 2).
  AdmmOptions admm;
  /// Forecast configuration (module 3).
  ForecastOptions forecast;
  /// How far past the training window the forecast must extend (seconds).
  /// Set this to at least the test-trace horizon.
  double forecast_horizon = 86400.0;
  /// Optional worker pool for the training passes: periodicity candidate
  /// scoring and the ADMM iteration loops fan out over it. Training output
  /// is byte-identical for any pool size (the parallel sections use fixed
  /// chunking with ordered reductions), so this is purely a wall-time knob.
  /// Overrides `periodicity.pool` and `admm.pool` when set; must outlive
  /// the TrainRobustScaler call.
  common::ThreadPool* training_pool = nullptr;
};

/// Everything the training phase produces.
struct TrainedPipeline {
  ts::CountSeries counts;           ///< Aggregated training counts.
  ts::DetectedPeriod period;        ///< Detected periodicity (0 = none).
  NhppModel model;                  ///< Fitted NHPP.
  AdmmInfo admm_info;               ///< Trainer diagnostics.
  /// Forecast intensity whose local time 0 is the *end* of training (=
  /// start of the test trace).
  workload::PiecewiseConstantIntensity forecast;
};

/// \brief Runs modules 1–3 on a training trace.
///
/// The training trace's horizon defines the training window; the returned
/// forecast covers [0, forecast_horizon) of post-training time.
Result<TrainedPipeline> TrainRobustScaler(const workload::Trace& training,
                                          const PipelineOptions& options = {});

/// \brief Modules 1b–3 on an already-aggregated count series (the counts
///        own the bin width; `options.dt` is ignored).
///
/// This is the refit entry point rs::train::TrainingSession drives: the
/// session accumulates counts incrementally and passes the previous fit's
/// iterate as `warm_start` (see AdmmOptions::warm_start; nullptr = the cold
/// start TrainRobustScaler uses). The returned forecast's local time 0 is
/// the end of `counts`.
Result<TrainedPipeline> TrainRobustScalerFromCounts(
    ts::CountSeries counts, const PipelineOptions& options,
    const std::vector<double>* warm_start = nullptr);

/// Builds the scaling policy (module 4) from a trained pipeline.
std::unique_ptr<RobustScalerPolicy> MakeRobustScalerPolicy(
    const TrainedPipeline& trained, const stats::DurationDistribution& pending,
    const SequentialScalerOptions& scaler_options);

}  // namespace rs::core
