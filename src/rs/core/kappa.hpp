/// \file kappa.hpp
/// \brief The look-ahead threshold κ of Algorithm 4 (Eq. 8):
///        κ = max{ i >= 1 : α-quantile of (γ_i / λ̄ − τ_i) < 0 }, with
///        γ_i ~ Gamma(i, 1). Planning always stays at least κ+1 arrivals
///        ahead so every query's instance can be ready in time.
#pragma once

#include <cstddef>

#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"

namespace rs::core {

/// \brief Exact κ for deterministic pending time τ: the condition becomes
///        GammaQuantile(i, 1, α) < λ̄·τ.
///
/// \param alpha       miss budget α in (0, 1).
/// \param lambda_bar  intensity upper bound λ̄ (per second, > 0).
/// \param tau         deterministic pending time (s, >= 0).
/// \param max_kappa   safety cap for the scan.
Result<std::size_t> ComputeKappaDeterministicTau(double alpha,
                                                 double lambda_bar, double tau,
                                                 std::size_t max_kappa = 100000);

/// \brief Exact κ by binary search on the Gamma quantile (O(log max_kappa)
///        quantile evaluations) — fast enough to recompute at every planning
///        round with the local intensity, as Section VII-A1 prescribes.
Result<std::size_t> ComputeKappaBinarySearch(double alpha, double lambda_bar,
                                             double tau,
                                             std::size_t max_kappa = 1000000);

/// \brief Monte Carlo κ for a general pending-time distribution.
///
/// Maintains R coupled paths of γ_i (incremental Exp(1) sums) and per-i
/// fresh τ draws; scans i upward until the empirical α-quantile of
/// γ_i/λ̄ − τ_i turns non-negative.
///
/// The paths are partitioned into fixed-size chunks, each advanced by its
/// own RNG substream seeded deterministically from `rng`. Chunk boundaries
/// and seeds depend only on num_samples — never on `pool` — so the result
/// is byte-identical whether the chunks run serially (pool null / inline)
/// or across any number of worker threads.
Result<std::size_t> ComputeKappaMonteCarlo(
    stats::Rng* rng, double alpha, double lambda_bar,
    const stats::DurationDistribution& pending, std::size_t num_samples = 2000,
    std::size_t max_kappa = 100000, common::ThreadPool* pool = nullptr);

}  // namespace rs::core
