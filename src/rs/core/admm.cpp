#include "rs/core/admm.hpp"

#include <algorithm>
#include <cmath>

#include "rs/linalg/banded_cholesky.hpp"
#include "rs/linalg/difference_ops.hpp"
#include "rs/linalg/pcg.hpp"
#include "rs/linalg/vector_ops.hpp"
#include "rs/stats/empirical.hpp"

namespace rs::core {

namespace {

using linalg::Vec;

/// Fixed chunk width for the pool-parallel element-wise loops. Chunk
/// boundaries (and the chunk-order reduction below) depend only on the
/// series length, so any worker count produces bitwise-identical iterates.
constexpr std::size_t kAdmmChunk = 1024;

void Clamp(Vec* r, double bound, common::ThreadPool* pool) {
  double* pr = r->data();
  common::ParallelForChunks(pool, r->size(), kAdmmChunk,
                            [pr, bound](std::size_t, std::size_t b,
                                        std::size_t e) {
                              for (std::size_t i = b; i < e; ++i) {
                                pr[i] = std::clamp(pr[i], -bound, bound);
                              }
                            });
}

/// Σ body(i) with per-chunk partials summed in chunk order (deterministic
/// for any pool size; the grouping differs from a single serial sweep, but
/// identically so on every run).
template <typename Body>
double ChunkedSum(common::ThreadPool* pool, std::size_t n, Vec* partials,
                  const Body& body) {
  const std::size_t chunks = n == 0 ? 0 : (n + kAdmmChunk - 1) / kAdmmChunk;
  partials->assign(chunks, 0.0);
  double* pp = partials->data();
  common::ParallelForChunks(pool, n, kAdmmChunk,
                            [pp, &body](std::size_t c, std::size_t b,
                                        std::size_t e) {
                              double acc = 0.0;
                              for (std::size_t i = b; i < e; ++i) {
                                acc += body(i);
                              }
                              pp[c] = acc;
                            });
  double total = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) total += pp[c];
  return total;
}

}  // namespace

Result<NhppModel> FitNhpp(const std::vector<double>& counts,
                          const NhppConfig& config, const AdmmOptions& options,
                          AdmmInfo* info) {
  const std::size_t t = counts.size();
  if (t < 3) return Status::Invalid("FitNhpp: need at least 3 bins");
  if (!(config.dt > 0.0)) return Status::Invalid("FitNhpp: dt must be > 0");
  if (config.beta1 < 0.0 || config.beta2 < 0.0) {
    return Status::Invalid("FitNhpp: beta1/beta2 must be >= 0");
  }
  if (!(options.rho > 0.0)) return Status::Invalid("FitNhpp: rho must be > 0");
  for (double q : counts) {
    if (!(q >= 0.0) || !std::isfinite(q)) {
      return Status::Invalid("FitNhpp: counts must be finite and >= 0");
    }
  }
  const bool use_period = config.period > 0 && config.period < t;
  const std::size_t period = use_period ? config.period : 0;
  const double rho = options.rho;
  common::ThreadPool* pool = options.pool;
  RSubproblemSolver solver = options.solver;
  if (solver == RSubproblemSolver::kAuto) {
    solver = period > kAutoSolverPeriodThreshold ? RSubproblemSolver::kPcg
                                                 : RSubproblemSolver::kBandedCholesky;
  }

  // Initialization: r0 = log((Q + 0.5) / Δt), a standard smoothed start —
  // unless a warm start supplies the iterate of a previous fit on a prefix
  // of this series (appended bins keep the smoothed default).
  Vec r(t);
  const std::vector<double>* warm = options.warm_start;
  for (std::size_t i = 0; i < t; ++i) {
    if (warm != nullptr && i < warm->size() && std::isfinite((*warm)[i])) {
      r[i] = (*warm)[i];
    } else {
      r[i] = std::log((counts[i] + 0.5) / config.dt);
    }
  }
  Clamp(&r, options.r_clamp, pool);

  Vec y, z;
  linalg::ApplyD2(r, &y);
  if (use_period) {
    linalg::ApplyDL(r, period, &z);
  }
  Vec nu_y(y.size(), 0.0), nu_z(z.size(), 0.0);

  // The band matrix is only materialized for the Cholesky path; the PCG
  // path stays matrix-free (the whole point for long periods).
  const std::size_t bandwidth =
      solver == RSubproblemSolver::kBandedCholesky
          ? (use_period ? std::max<std::size_t>(2, period) : 2)
          : 0;
  linalg::SymmetricBandedMatrix a(t, bandwidth);
  linalg::Vec rhs(t), r_next(t), tmp(t), tmp2(t), partials;
  Vec w(t);  // Δt · exp(r_k): Hessian weights of the likelihood term.
  AdmmInfo local_info;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // ---- r-update: solve A_k r = B_k (Algorithm 2, line 2). ----
    // B_k = Q − Δt e^{r_k} + diag(w) r_k + D2ᵀ(ν_y + ρ y) + DLᵀ(ν_z + ρ z).
    {
      const double dt = config.dt;
      const double* pc = counts.data();
      const double* pr = r.data();
      double* pw = w.data();
      double* prhs = rhs.data();
      common::ParallelForChunks(
          pool, t, kAdmmChunk,
          [dt, pc, pr, pw, prhs](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              pw[i] = dt * std::exp(pr[i]);
              prhs[i] = pc[i] - pw[i] + pw[i] * pr[i];
            }
          });
    }
    {
      Vec packed(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) {
        packed[i] = nu_y[i] + rho * y[i];
      }
      linalg::ApplyD2Transpose(packed, t, &tmp);
      for (std::size_t i = 0; i < t; ++i) rhs[i] += tmp[i];
    }
    if (use_period) {
      Vec packed(z.size());
      for (std::size_t i = 0; i < z.size(); ++i) {
        packed[i] = nu_z[i] + rho * z[i];
      }
      linalg::ApplyDLTranspose(packed, t, period, &tmp2);
      for (std::size_t i = 0; i < t; ++i) rhs[i] += tmp2[i];
    }

    if (solver == RSubproblemSolver::kBandedCholesky) {
      a.SetZero();
      a.AddDiagonal(w);
      linalg::AddGramD2(rho, &a);
      if (use_period) linalg::AddGramDL(rho, period, &a);
      RS_RETURN_NOT_OK(linalg::BandedCholesky::FactorAndSolve(a, rhs, &r_next));
    } else {
      auto op = linalg::MakeAdmmOperator(w, rho, use_period ? rho : 0.0, period);
      Vec diag = w;
      // Diagonal of ρ·D2ᵀD2: stencil contributions 1+4+1 = 6ρ interior.
      for (std::size_t i = 0; i + 2 < t; ++i) {
        diag[i] += rho;
        diag[i + 1] += 4.0 * rho;
        diag[i + 2] += rho;
      }
      if (use_period) {
        for (std::size_t i = 0; i + period < t; ++i) {
          diag[i] += rho;
          diag[i + period] += rho;
        }
      }
      r_next = r;  // Warm start from the previous iterate.
      linalg::PcgOptions pcg_opts;
      pcg_opts.max_iterations = 4 * t;
      RS_RETURN_NOT_OK(linalg::SolvePcg(op, diag, rhs, pcg_opts, &r_next));
    }
    Clamp(&r_next, options.r_clamp, pool);

    // ---- y-update (line 3): soft-threshold prox of β1‖·‖₁. ----
    Vec d2r;
    linalg::ApplyD2(r_next, &d2r);
    Vec y_next(d2r.size());
    {
      const double inv_rho_beta1 = config.beta1 / rho;
      const double* pd = d2r.data();
      const double* pn = nu_y.data();
      double* py = y_next.data();
      common::ParallelForChunks(
          pool, d2r.size(), kAdmmChunk,
          [rho, inv_rho_beta1, pd, pn, py](std::size_t, std::size_t b,
                                           std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              py[i] = stats::SoftThreshold(pd[i] - pn[i] / rho, inv_rho_beta1);
            }
          });
    }

    // ---- z-update (line 4): closed-form ridge shrink. ----
    Vec dlr, z_next;
    if (use_period) {
      linalg::ApplyDL(r_next, period, &dlr);
      z_next.resize(dlr.size());
      const double shrink = config.beta2 + rho;
      const double* pd = dlr.data();
      const double* pn = nu_z.data();
      double* pz = z_next.data();
      common::ParallelForChunks(
          pool, dlr.size(), kAdmmChunk,
          [rho, shrink, pd, pn, pz](std::size_t, std::size_t b,
                                    std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              pz[i] = (rho * pd[i] - pn[i]) / shrink;
            }
          });
    }

    // ---- dual updates (lines 5–6). ----
    double primal_sq =
        ChunkedSum(pool, y_next.size(), &partials,
                   [&y_next, &d2r, &nu_y, rho](std::size_t i) {
                     const double gap = y_next[i] - d2r[i];
                     nu_y[i] += rho * gap;
                     return gap * gap;
                   });
    if (use_period) {
      primal_sq +=
          ChunkedSum(pool, z_next.size(), &partials,
                     [&z_next, &dlr, &nu_z, rho](std::size_t i) {
                       const double gap = z_next[i] - dlr[i];
                       nu_z[i] += rho * gap;
                       return gap * gap;
                     });
    }

    // Dual residual: ρ‖(y_{k+1}−y_k, z_{k+1}−z_k)‖ (standard ADMM criterion).
    double dual_sq = ChunkedSum(pool, y_next.size(), &partials,
                                [&y_next, &y](std::size_t i) {
                                  const double dy = y_next[i] - y[i];
                                  return dy * dy;
                                });
    if (use_period) {
      dual_sq += ChunkedSum(pool, z_next.size(), &partials,
                            [&z_next, &z](std::size_t i) {
                              const double dz = z_next[i] - z[i];
                              return dz * dz;
                            });
    }

    r = r_next;
    y = std::move(y_next);
    if (use_period) z = std::move(z_next);

    local_info.iterations = iter + 1;
    local_info.primal_residual = std::sqrt(primal_sq);
    local_info.dual_residual = rho * std::sqrt(dual_sq);
    if (local_info.primal_residual < options.primal_tolerance &&
        local_info.dual_residual < options.dual_tolerance) {
      local_info.converged = true;
      break;
    }
  }
  if (info != nullptr) *info = local_info;

  NhppConfig fitted_config = config;
  fitted_config.period = period;
  return NhppModel(fitted_config, std::move(r));
}

}  // namespace rs::core
