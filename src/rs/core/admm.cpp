#include "rs/core/admm.hpp"

#include <algorithm>
#include <cmath>

#include "rs/linalg/banded_cholesky.hpp"
#include "rs/linalg/difference_ops.hpp"
#include "rs/linalg/pcg.hpp"
#include "rs/linalg/vector_ops.hpp"
#include "rs/stats/empirical.hpp"

namespace rs::core {

namespace {

using linalg::Vec;

void Clamp(Vec* r, double bound) {
  for (double& v : *r) v = std::clamp(v, -bound, bound);
}

}  // namespace

Result<NhppModel> FitNhpp(const std::vector<double>& counts,
                          const NhppConfig& config, const AdmmOptions& options,
                          AdmmInfo* info) {
  const std::size_t t = counts.size();
  if (t < 3) return Status::Invalid("FitNhpp: need at least 3 bins");
  if (!(config.dt > 0.0)) return Status::Invalid("FitNhpp: dt must be > 0");
  if (config.beta1 < 0.0 || config.beta2 < 0.0) {
    return Status::Invalid("FitNhpp: beta1/beta2 must be >= 0");
  }
  if (!(options.rho > 0.0)) return Status::Invalid("FitNhpp: rho must be > 0");
  for (double q : counts) {
    if (!(q >= 0.0) || !std::isfinite(q)) {
      return Status::Invalid("FitNhpp: counts must be finite and >= 0");
    }
  }
  const bool use_period = config.period > 0 && config.period < t;
  const std::size_t period = use_period ? config.period : 0;
  const double rho = options.rho;
  RSubproblemSolver solver = options.solver;
  if (solver == RSubproblemSolver::kAuto) {
    solver = period > kAutoSolverPeriodThreshold ? RSubproblemSolver::kPcg
                                                 : RSubproblemSolver::kBandedCholesky;
  }

  // Initialization: r0 = log((Q + 0.5) / Δt), a standard smoothed start.
  Vec r(t);
  for (std::size_t i = 0; i < t; ++i) {
    r[i] = std::log((counts[i] + 0.5) / config.dt);
  }
  Clamp(&r, options.r_clamp);

  Vec y, z;
  linalg::ApplyD2(r, &y);
  if (use_period) {
    linalg::ApplyDL(r, period, &z);
  }
  Vec nu_y(y.size(), 0.0), nu_z(z.size(), 0.0);

  // The band matrix is only materialized for the Cholesky path; the PCG
  // path stays matrix-free (the whole point for long periods).
  const std::size_t bandwidth =
      solver == RSubproblemSolver::kBandedCholesky
          ? (use_period ? std::max<std::size_t>(2, period) : 2)
          : 0;
  linalg::SymmetricBandedMatrix a(t, bandwidth);
  linalg::Vec rhs(t), r_next(t), tmp(t), tmp2(t);
  AdmmInfo local_info;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // ---- r-update: solve A_k r = B_k (Algorithm 2, line 2). ----
    Vec w(t);  // Δt · exp(r_k): Hessian weights of the likelihood term.
    for (std::size_t i = 0; i < t; ++i) w[i] = config.dt * std::exp(r[i]);

    // B_k = Q − Δt e^{r_k} + diag(w) r_k + D2ᵀ(ν_y + ρ y) + DLᵀ(ν_z + ρ z).
    for (std::size_t i = 0; i < t; ++i) {
      rhs[i] = counts[i] - w[i] + w[i] * r[i];
    }
    {
      Vec packed(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) {
        packed[i] = nu_y[i] + rho * y[i];
      }
      linalg::ApplyD2Transpose(packed, t, &tmp);
      for (std::size_t i = 0; i < t; ++i) rhs[i] += tmp[i];
    }
    if (use_period) {
      Vec packed(z.size());
      for (std::size_t i = 0; i < z.size(); ++i) {
        packed[i] = nu_z[i] + rho * z[i];
      }
      linalg::ApplyDLTranspose(packed, t, period, &tmp2);
      for (std::size_t i = 0; i < t; ++i) rhs[i] += tmp2[i];
    }

    if (solver == RSubproblemSolver::kBandedCholesky) {
      a.SetZero();
      a.AddDiagonal(w);
      linalg::AddGramD2(rho, &a);
      if (use_period) linalg::AddGramDL(rho, period, &a);
      RS_RETURN_NOT_OK(linalg::BandedCholesky::FactorAndSolve(a, rhs, &r_next));
    } else {
      auto op = linalg::MakeAdmmOperator(w, rho, use_period ? rho : 0.0, period);
      Vec diag = w;
      // Diagonal of ρ·D2ᵀD2: stencil contributions 1+4+1 = 6ρ interior.
      for (std::size_t i = 0; i + 2 < t; ++i) {
        diag[i] += rho;
        diag[i + 1] += 4.0 * rho;
        diag[i + 2] += rho;
      }
      if (use_period) {
        for (std::size_t i = 0; i + period < t; ++i) {
          diag[i] += rho;
          diag[i + period] += rho;
        }
      }
      r_next = r;  // Warm start from the previous iterate.
      linalg::PcgOptions pcg_opts;
      pcg_opts.max_iterations = 4 * t;
      RS_RETURN_NOT_OK(linalg::SolvePcg(op, diag, rhs, pcg_opts, &r_next));
    }
    Clamp(&r_next, options.r_clamp);

    // ---- y-update (line 3): soft-threshold prox of β1‖·‖₁. ----
    Vec d2r;
    linalg::ApplyD2(r_next, &d2r);
    Vec y_next(d2r.size());
    for (std::size_t i = 0; i < d2r.size(); ++i) {
      y_next[i] =
          stats::SoftThreshold(d2r[i] - nu_y[i] / rho, config.beta1 / rho);
    }

    // ---- z-update (line 4): closed-form ridge shrink. ----
    Vec dlr, z_next;
    if (use_period) {
      linalg::ApplyDL(r_next, period, &dlr);
      z_next.resize(dlr.size());
      for (std::size_t i = 0; i < dlr.size(); ++i) {
        z_next[i] = (rho * dlr[i] - nu_z[i]) / (config.beta2 + rho);
      }
    }

    // ---- dual updates (lines 5–6). ----
    double primal_sq = 0.0;
    for (std::size_t i = 0; i < y_next.size(); ++i) {
      const double gap = y_next[i] - d2r[i];
      nu_y[i] += rho * gap;
      primal_sq += gap * gap;
    }
    if (use_period) {
      for (std::size_t i = 0; i < z_next.size(); ++i) {
        const double gap = z_next[i] - dlr[i];
        nu_z[i] += rho * gap;
        primal_sq += gap * gap;
      }
    }

    // Dual residual: ρ‖(y_{k+1}−y_k, z_{k+1}−z_k)‖ (standard ADMM criterion).
    double dual_sq = 0.0;
    for (std::size_t i = 0; i < y_next.size(); ++i) {
      const double dy = y_next[i] - y[i];
      dual_sq += dy * dy;
    }
    if (use_period) {
      for (std::size_t i = 0; i < z_next.size(); ++i) {
        const double dz = z_next[i] - z[i];
        dual_sq += dz * dz;
      }
    }

    r = r_next;
    y = std::move(y_next);
    if (use_period) z = std::move(z_next);

    local_info.iterations = iter + 1;
    local_info.primal_residual = std::sqrt(primal_sq);
    local_info.dual_residual = rho * std::sqrt(dual_sq);
    if (local_info.primal_residual < options.primal_tolerance &&
        local_info.dual_residual < options.dual_tolerance) {
      local_info.converged = true;
      break;
    }
  }
  if (info != nullptr) *info = local_info;

  NhppConfig fitted_config = config;
  fitted_config.period = period;
  return NhppModel(fitted_config, std::move(r));
}

}  // namespace rs::core
