#include "rs/core/calibration.hpp"

#include <algorithm>

namespace rs::core {

namespace {

/// Pool-adjacent-violators: smallest-change non-decreasing fit.
std::vector<double> Isotonize(std::vector<double> v) {
  const std::size_t n = v.size();
  std::vector<double> level(v);
  std::vector<double> weight(n, 1.0);
  std::vector<std::size_t> size(n, 1);
  std::size_t blocks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    level[blocks] = v[i];
    weight[blocks] = 1.0;
    size[blocks] = 1;
    while (blocks > 0 && level[blocks - 1] > level[blocks]) {
      const double merged_weight = weight[blocks - 1] + weight[blocks];
      level[blocks - 1] =
          (level[blocks - 1] * weight[blocks - 1] + level[blocks] * weight[blocks]) /
          merged_weight;
      weight[blocks - 1] = merged_weight;
      size[blocks - 1] += size[blocks];
      --blocks;
    }
    ++blocks;
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t b = 0; b < blocks; ++b) {
    out.insert(out.end(), size[b], level[b]);
  }
  return out;
}

double Interpolate(const std::vector<double>& xs, const std::vector<double>& ys,
                   double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  if (span <= 0.0) return ys[lo];
  const double frac = (x - xs[lo]) / span;
  return ys[lo] * (1.0 - frac) + ys[hi] * frac;
}

}  // namespace

Result<CalibrationCurve> CalibrationCurve::Make(std::vector<double> nominal,
                                                std::vector<double> actual) {
  if (nominal.size() != actual.size() || nominal.size() < 2) {
    return Status::Invalid(
        "CalibrationCurve: need >= 2 equal-length nominal/actual points");
  }
  for (std::size_t i = 1; i < nominal.size(); ++i) {
    if (!(nominal[i] > nominal[i - 1])) {
      return Status::Invalid("CalibrationCurve: nominal must be ascending");
    }
  }
  CalibrationCurve curve;
  curve.nominal_ = std::move(nominal);
  curve.actual_ = Isotonize(std::move(actual));
  return curve;
}

double CalibrationCurve::PickNominal(double desired_actual) const {
  // The isotonized actuals may contain flat stretches; Interpolate on the
  // inverse handles them by returning the left edge.
  return Interpolate(actual_, nominal_, desired_actual);
}

double CalibrationCurve::PredictActual(double nominal) const {
  return Interpolate(nominal_, actual_, nominal);
}

}  // namespace rs::core
