/// \file admm.hpp
/// \brief The specialized quadratically-approximated ADMM of Algorithm 2
///        that trains the regularized NHPP model (Eq. 1).
///
/// Splitting: y = D2 r (L1 block, soft-threshold prox), z = DL r (L2 block,
/// closed-form shrink). The r-subproblem replaces the exponential likelihood
/// term with its second-order Taylor expansion around r_k, reducing to the
/// sparse banded SPD system A_k r = B_k solved by banded Cholesky or,
/// matrix-free, by Jacobi-PCG.
#pragma once

#include <cstddef>

#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/core/nhpp_model.hpp"

namespace rs::core {

/// Which linear solver handles the r-subproblem.
enum class RSubproblemSolver {
  kAuto,            ///< Cholesky for short periods, PCG for long ones.
  kBandedCholesky,  ///< Exact O(T·L²) factor per iteration.
  kPcg,             ///< Matrix-free, O(T) per matvec; wins for large L.
};

/// Periods above this bandwidth make the O(T·L²) band factor slower than
/// matrix-free PCG on typical series lengths; kAuto switches there
/// (quantified by bench_ablation_solver).
inline constexpr std::size_t kAutoSolverPeriodThreshold = 512;

/// ADMM hyper-parameters and stopping rules.
struct AdmmOptions {
  double rho = 1.0;               ///< Augmented-Lagrangian penalty ρ.
  std::size_t max_iterations = 200;
  /// Stop when both primal residuals ‖y−D2r‖₂, ‖z−DLr‖₂ and the dual
  /// residual (scaled iterate change) fall below these.
  double primal_tolerance = 1e-6;
  double dual_tolerance = 1e-6;
  RSubproblemSolver solver = RSubproblemSolver::kAuto;
  /// Log-intensity is clamped to ±`r_clamp` to keep exp() finite.
  double r_clamp = 25.0;
  /// Optional worker pool for the element-wise iteration loops (Hessian
  /// weights, prox updates, residual reductions). Work is split into fixed
  /// chunks whose partial sums are combined in chunk order, so the fit is
  /// byte-identical for any pool size (null/inline included). The pool must
  /// outlive the FitNhpp call.
  common::ThreadPool* pool = nullptr;
  /// Optional initial iterate r₀ (log-intensity, aligned with `counts`): a
  /// warm start from a previous fit on a prefix of the same series. Bins
  /// beyond its length — and non-finite entries — fall back to the smoothed
  /// default start; everything is clamped to ±r_clamp either way. Reusing
  /// the previous iterate typically cuts iterations several-fold on small
  /// appended windows (the per-iterate warm start the PCG path already
  /// exploits, lifted to whole refits). Not owned; must outlive the call.
  const std::vector<double>* warm_start = nullptr;
};

/// Fit diagnostics.
struct AdmmInfo {
  std::size_t iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  bool converged = false;
};

/// \brief Fits the NHPP log-intensity to a count series.
///
/// \param counts  Q_t — queries per Δt bin (length T >= 3).
/// \param config  Δt, β1, β2 and the detected period L (0 = no DL term).
/// \param options solver configuration.
/// \param info    optional convergence diagnostics.
Result<NhppModel> FitNhpp(const std::vector<double>& counts,
                          const NhppConfig& config,
                          const AdmmOptions& options = {},
                          AdmmInfo* info = nullptr);

}  // namespace rs::core
