/// \file sequential_scaler.hpp
/// \brief The sequential proactive scaling schemes of Section VI-C.
///
/// Two implementations of Algorithm 4 are provided:
///  * RobustScalerPolicy — the experiments' variant (Section VII-A1):
///    planning every Δ seconds; each round computes creation times for all
///    upcoming queries whose optimal creation time falls inside the next Δ
///    window, with the look-ahead threshold κ arising implicitly from the
///    outstanding-instance count. Supports the HP (Eq. 3), RT (Eq. 5 /
///    Alg. 3) and cost (Eq. 7) decision rules.
///  * HpCountScaler — the literal Algorithm 4: planning every m arrivals,
///    always staying κ+1 arrivals ahead; used to validate Proposition 1.
///
/// Both planners run their Monte Carlo rounds through a persistent
/// PlanWorkspace (batched sampling + the allocation-free DecisionKernel).
/// Rounds are sharded: every draw comes from a counter-based substream of
/// the round's master state keyed on (query index, path block) — see
/// stats::Rng::SubstreamAt — so the per-query decisions are independent
/// given the γ paths and fan out across an optional planning pool
/// (SequentialScalerOptions::planning_pool / SetPlanningPool) with fixed
/// blocking and k-ordered reductions. Emitted actions are byte-identical
/// for 0/1/N workers. Setting RS_REFERENCE_KERNELS (see
/// rs/common/kernels.hpp) routes the solve phase through the naive
/// reference kernels (serially) instead; under a fixed seed the two paths
/// emit byte-identical action sequences — the guarantee that keeps the hot
/// path safe to optimize.
#pragma once

#include <cstdint>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/core/decision.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::common {
class ThreadPool;
}  // namespace rs::common

namespace rs::core {

/// Which stochastically-constrained formulation drives decisions.
enum class ScalerVariant {
  kHittingProbability,  ///< RobustScaler-HP: P(hit) >= 1 − α (Eq. 2/3).
  kResponseTime,        ///< RobustScaler-RT: E[RT] <= d (Eq. 4/5).
  kCost,                ///< RobustScaler-cost: E[cost] <= B (Eq. 6/7).
};

/// \brief Per-slot scratch for one in-flight decision of a planning round:
///        batch-inversion buffers, selection scratch, τ/ξ sample storage,
///        and a decision kernel. Each parallel k-slot of a round owns one
///        shard, so concurrent solves never share mutable state.
struct PlanShard {
  std::vector<double> targets;       ///< base + γ row: inversion input.
  std::vector<std::uint32_t> order;  ///< Batch-inversion index scratch.
  std::vector<double> gather;        ///< Pivot-prefilter buffer (HP).
  common::RadixSortScratch radix;    ///< Target-sort scratch (RT/cost).
  McSamples samples;                 ///< ξ/τ buffers bound to the kernel.
  DecisionKernel kernel;

  /// Retained bytes (buffer capacities) for workspace accounting.
  std::size_t RetainedBytes() const;
};

/// One per-query outcome of a planning round's solve phase; buffered per
/// tile so the k-ordered reduction can replay failures and early stops
/// exactly like the serial loop.
struct SolvedDecision {
  Status status;
  Decision decision;
};

/// \brief Persistent per-policy buffers for the planning hot loop: Monte
///        Carlo path state, tiled γ/τ rows, per-slot shards, and the
///        decision kernels, all reused across rounds so steady-state
///        planning performs no heap allocation.
struct PlanWorkspace {
  std::vector<double> gamma;       ///< Cumulative unit-rate exposure per path.
  std::vector<double> tile_gamma;  ///< Tile of cumulative γ rows (row-major).
  std::vector<double> tile_tau;    ///< Tile of τ rows (stochastic τ only).
  /// Previous round's per-query α-quantile of γ — the warm pivot that lets
  /// the next round's selection pre-filter to ~αR elements.
  std::vector<double> hp_cuts;
  std::vector<PlanShard> shards;          ///< One per parallel k-slot.
  std::vector<SolvedDecision> decisions;  ///< Tile reduction buffer.

  /// Resizes every per-path buffer to `r` elements (no-op once warm).
  /// Shrinks to fit when `r` drops well below the retained capacity, so a
  /// fleet tenant whose R shrinks stops pinning its peak-size buffers.
  void EnsureSize(std::size_t r);

  /// Ensures at least `count` solve shards exist.
  void EnsureShards(std::size_t count);

  /// Bytes of planning scratch currently retained (buffer capacities,
  /// shards and kernels included) — surfaced through
  /// Autoscaler::planning_workspace_bytes into serving snapshots.
  std::size_t RetainedBytes() const;

  /// Λ(now) memoized on `now`: back-to-back rounds at the same instant
  /// (initialize + first tick) skip the re-derivation.
  double CumulativeAt(const workload::PiecewiseConstantIntensity& forecast,
                      double now);

 private:
  double cached_now_ = 0.0;
  double cached_base_ = 0.0;
  bool cache_valid_ = false;
};

/// Options for RobustScalerPolicy.
struct SequentialScalerOptions {
  ScalerVariant variant = ScalerVariant::kHittingProbability;
  /// HP variant: miss budget α = 1 − target hitting probability.
  double alpha = 0.1;
  /// RT variant: waiting-time budget d − µs (seconds).
  double rt_excess = 1.0;
  /// Cost variant: idle-time budget B − µτ − µs (seconds per instance).
  double idle_budget = 2.0;
  /// Monte Carlo sample count R per decision (paper's Fig. 8 study: 1000).
  std::size_t mc_samples = 300;
  /// Planning interval Δ in seconds (paper: 1 s; Fig. 10(d) sweeps 1–60).
  double planning_interval = 1.0;
  /// Safety cap on creations scheduled per planning round.
  std::size_t max_creations_per_round = 20000;
  /// Miss budget used for the look-ahead depth κ (Eq. 8). The HP variant
  /// reuses its own `alpha`; RT/cost variants use this value purely to size
  /// the committed look-ahead.
  double kappa_alpha = 0.1;
  /// Window (seconds) ahead of `now` scanned for the local intensity bound
  /// λ̄ that feeds κ — Section VII-A1's time-dependent κ.
  double local_intensity_window = 300.0;
  /// Simulation time that corresponds to the forecast's local time 0.
  /// 0 for a forecast anchored at the test start; the refitting wrapper
  /// sets it to the refit time.
  double forecast_origin = 0.0;
  std::uint64_t seed = 31;
  /// Optional worker pool the planner shards its Monte Carlo rounds over
  /// (draw blocks and per-query solves). Emitted actions are byte-identical
  /// for any pool size — this is purely a wall-time knob. Not owned; must
  /// outlive the policy (or be replaced via SetPlanningPool). nullptr plans
  /// inline.
  common::ThreadPool* planning_pool = nullptr;
};

/// \brief The RobustScaler autoscaling policy (time-interval planning).
///
/// The forecast intensity's local time zero must coincide with simulation
/// time zero (i.e., the start of the replayed test trace).
class RobustScalerPolicy : public sim::Autoscaler {
 public:
  RobustScalerPolicy(workload::PiecewiseConstantIntensity forecast,
                     stats::DurationDistribution pending,
                     SequentialScalerOptions options);

  const char* name() const override;
  double planning_interval() const override {
    return options_.planning_interval;
  }
  /// Decisions depend on the forecast and outstanding-instance counts only,
  /// never on past arrival times: no history retention needed.
  double history_requirement() const override { return 0.0; }
  void SetPlanningPool(common::ThreadPool* pool) override {
    options_.planning_pool = pool;
  }
  std::size_t planning_workspace_bytes() const override {
    return workspace_.RetainedBytes();
  }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;

  /// Decision rule applied to one upcoming query's samples (exposed so
  /// benches can time a single decision update — Fig. 8).
  Result<Decision> SolveOne(const McSamples& samples) const;

  /// \brief Durable-snapshot support (rs::persist): the policy's mutable
  ///        model is its RNG position; option scalars ride along so restore
  ///        can cross-check them against the rebuilt spec.
  ///
  /// The PlanWorkspace (γ tiles, shards, hp_cuts warm pivots) and the κ
  /// memo are pure scratch — they change planning *speed*, never the
  /// emitted actions (the reference-kernel parity tests pin this) — so they
  /// are deliberately not persisted and restart cold.
  Status SerializeModel(persist::Writer* writer) const override;
  Status DeserializeModel(persist::Reader* reader) override;

  const SequentialScalerOptions& options() const { return options_; }

 private:
  sim::ScalingAction PlanWindow(const sim::SimContext& ctx);

  /// Committed look-ahead depth κ + m for the local intensity at
  /// forecast-local time `now`.
  std::size_t CommitDepth(double now);

  workload::PiecewiseConstantIntensity forecast_;
  stats::DurationDistribution pending_;
  SequentialScalerOptions options_;
  stats::Rng rng_;
  PlanWorkspace workspace_;
  // Memoized κ for the last (quantized) local intensity (see CommitDepth).
  bool kappa_cache_valid_ = false;
  double kappa_cache_lambda_ = 0.0;
  std::size_t kappa_cache_value_ = 0;
};

/// Options for the literal Algorithm 4 (query-count planning).
struct HpCountScalerOptions {
  double alpha = 0.1;          ///< Miss budget α.
  std::size_t m = 1;           ///< Plan every m arrivals.
  std::size_t mc_samples = 2000;
  std::uint64_t seed = 47;
  /// Upper intensity bound λ̄ for κ (Eq. 8); <= 0 derives it from the
  /// forecast's maximum rate.
  double lambda_bar = 0.0;
  /// Optional Monte Carlo sharding pool (see
  /// SequentialScalerOptions::planning_pool).
  common::ThreadPool* planning_pool = nullptr;
};

/// \brief Literal Algorithm 4 with the κ threshold: plans creation times
///        for the (κ+1)-th … (κ+m)-th upcoming queries every m arrivals.
class HpCountScaler : public sim::Autoscaler {
 public:
  HpCountScaler(workload::PiecewiseConstantIntensity forecast,
                stats::DurationDistribution pending,
                HpCountScalerOptions options);

  const char* name() const override { return "RobustScaler-HP-count"; }
  /// Plans from the forecast alone; past arrivals are never re-read.
  double history_requirement() const override { return 0.0; }
  void SetPlanningPool(common::ThreadPool* pool) override {
    options_.planning_pool = pool;
  }
  std::size_t planning_workspace_bytes() const override {
    return workspace_.RetainedBytes();
  }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

  /// The κ computed at initialization (for tests).
  std::size_t kappa() const { return kappa_; }

  /// Durable-snapshot support: RNG position plus the committed κ and the
  /// arrivals-since-plan counter (both fix *when* the next plan fires, so
  /// they are model state, not scratch). The workspace restarts cold.
  Status SerializeModel(persist::Writer* writer) const override;
  Status DeserializeModel(persist::Reader* reader) override;

 private:
  /// Plans x for the (first_j)-th … (first_j + count − 1)-th upcoming
  /// queries measured from `now`.
  sim::ScalingAction PlanAhead(double now, std::size_t first_j,
                               std::size_t count);

  workload::PiecewiseConstantIntensity forecast_;
  stats::DurationDistribution pending_;
  HpCountScalerOptions options_;
  stats::Rng rng_;
  PlanWorkspace workspace_;
  std::size_t kappa_ = 0;
  std::size_t arrivals_since_plan_ = 0;
};

}  // namespace rs::core
