/// \file extensions.hpp
/// \brief Paper-motivated companion strategies used for ablations:
///
///  * NaiveBatchScaler — the "naive strategy" of Section VI-C: plan a batch
///    of K creation times by (3), wait until *all* K instances are consumed,
///    then plan the next batch. Its defect (the first few queries of each
///    batch find no instance ready) is exactly what the κ threshold fixes.
///  * MeanRateScaler — the related-work strawman (Section II): scales on a
///    mean demand estimate with no uncertainty handling — instance j is
///    created at the predicted *expected* arrival time minus the mean
///    pending time. Shows the value of the stochastic constraints.
///  * RefittingPolicy — Section VII-B2's deployment mode: the NHPP model is
///    refit at a low frequency (e.g., every half hour) on the training data
///    plus arrivals observed so far, so the forecast tracks drift.
#pragma once

#include <cstdint>
#include <memory>

#include "rs/core/pipeline.hpp"
#include "rs/core/sequential_scaler.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/workload/trace.hpp"

namespace rs::core {

/// Options for the naive batch strategy.
struct NaiveBatchOptions {
  double alpha = 0.1;        ///< Miss budget for the per-query rule (Eq. 3).
  std::size_t batch = 20;    ///< K: queries planned per batch.
  std::size_t mc_samples = 300;
  std::uint64_t seed = 53;
};

/// \brief Section VI-C's naive strategy: batch-plan K instances, replan only
///        after all K are consumed.
class NaiveBatchScaler : public sim::Autoscaler {
 public:
  NaiveBatchScaler(workload::PiecewiseConstantIntensity forecast,
                   stats::DurationDistribution pending,
                   NaiveBatchOptions options);

  const char* name() const override { return "NaiveBatch"; }
  /// Batch plans come from the forecast; history is never read.
  double history_requirement() const override { return 0.0; }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

 private:
  sim::ScalingAction PlanBatch(double now);

  workload::PiecewiseConstantIntensity forecast_;
  stats::DurationDistribution pending_;
  NaiveBatchOptions options_;
  stats::Rng rng_;
};

/// Options for the mean-rate strategy.
struct MeanRateOptions {
  double planning_interval = 5.0;
  /// Look-ahead depth in expected arrivals (same role as κ+m).
  std::size_t depth = 20;
  std::uint64_t seed = 59;
};

/// \brief Uncertainty-blind strawman: instance j is scheduled at the mean
///        predicted arrival time of the j-th upcoming query minus the mean
///        pending time (clamped at now). No quantiles, no constraints.
class MeanRateScaler : public sim::Autoscaler {
 public:
  MeanRateScaler(workload::PiecewiseConstantIntensity forecast,
                 stats::DurationDistribution pending, MeanRateOptions options);

  const char* name() const override { return "MeanRate"; }
  double planning_interval() const override {
    return options_.planning_interval;
  }
  /// Mean-rate schedules come from the forecast; history is never read.
  double history_requirement() const override { return 0.0; }

  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;

 private:
  workload::PiecewiseConstantIntensity forecast_;
  stats::DurationDistribution pending_;
  MeanRateOptions options_;
};

/// Options for the refitting wrapper.
struct RefittingOptions {
  /// Seconds between refits (paper suggestion: every half hour).
  double refit_interval = 1800.0;
  /// Pipeline configuration reused at every refit.
  PipelineOptions pipeline;
  /// Scaling policy configuration rebuilt after every refit.
  SequentialScalerOptions scaler;
};

/// \brief Deployment-mode wrapper: periodically refits the NHPP on the
///        original training trace plus all arrivals observed during the
///        replay, rebuilds the forecast anchored at the refit time, and
///        delegates scaling to a fresh RobustScalerPolicy.
class RefittingPolicy : public sim::Autoscaler {
 public:
  /// \param training  historical trace; its horizon is where simulation
  ///                  time 0 begins.
  RefittingPolicy(workload::Trace training,
                  stats::DurationDistribution pending,
                  RefittingOptions options);

  const char* name() const override { return "RobustScaler-refit"; }
  double planning_interval() const override {
    return options_.scaler.planning_interval;
  }
  /// Refits consume the entire observed history (training + everything
  /// since): serving state must not compact it.
  double history_requirement() const override {
    return sim::kUnboundedHistory;
  }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;

  /// Number of successful refits performed (for tests/diagnostics).
  std::size_t refit_count() const { return refit_count_; }

 private:
  /// Refits on training + observed arrivals and rebuilds the delegate.
  Status Refit(double now, const std::vector<double>& observed_arrivals);

  workload::Trace training_;
  stats::DurationDistribution pending_;
  RefittingOptions options_;
  std::unique_ptr<RobustScalerPolicy> delegate_;
  double last_refit_ = 0.0;
  std::size_t refit_count_ = 0;
};

}  // namespace rs::core
