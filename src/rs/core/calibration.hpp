/// \file calibration.hpp
/// \brief Nominal→actual QoS calibration (Section VI-C practical
///        guidelines): run the scaler at a grid of nominal levels on
///        training data, record the achieved levels, and invert the map to
///        pick the nominal level that attains a desired actual level.
#pragma once

#include <vector>

#include "rs/common/status.hpp"

namespace rs::core {

/// A monotone nominal→actual mapping built from calibration runs.
class CalibrationCurve {
 public:
  /// \param nominal ascending nominal levels p_1 < … < p_B.
  /// \param actual  achieved levels p̂_b from running the scaler at p_b on
  ///                training data; must be the same length. Non-monotone
  ///                actuals are isotonized (pool-adjacent-violators).
  static Result<CalibrationCurve> Make(std::vector<double> nominal,
                                       std::vector<double> actual);

  /// Nominal level whose calibrated actual equals `desired_actual`
  /// (piecewise-linear inverse interpolation, clamped to the grid range).
  double PickNominal(double desired_actual) const;

  /// Calibrated actual level at a nominal value (forward interpolation).
  double PredictActual(double nominal) const;

  const std::vector<double>& nominal() const { return nominal_; }
  const std::vector<double>& actual() const { return actual_; }

 private:
  std::vector<double> nominal_;
  std::vector<double> actual_;
};

}  // namespace rs::core
