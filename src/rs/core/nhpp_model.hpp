/// \file nhpp_model.hpp
/// \brief The regularized NHPP arrival model of Section V: log-intensity
///        r_t per Δt bin, Poisson likelihood with an L1 second-difference
///        penalty and an L2 periodicity penalty (Eq. 1).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::core {

/// Hyper-parameters of the regularized loss (Eq. 1).
struct NhppConfig {
  double dt = 60.0;      ///< Bin width Δt (seconds).
  double beta1 = 10.0;   ///< L1 weight on D2 r (trend smoothness).
  double beta2 = 50.0;   ///< L2 weight on DL r (periodicity coupling).
  std::size_t period = 0;  ///< Period L in bins; 0 disables the DL term.
};

/// \brief A fitted NHPP: r_t (natural log of the per-second intensity)
///        for each of T training bins.
class NhppModel {
 public:
  NhppModel() = default;
  NhppModel(NhppConfig config, std::vector<double> log_intensity);

  const NhppConfig& config() const { return config_; }
  const std::vector<double>& log_intensity() const { return r_; }
  std::size_t bins() const { return r_.size(); }

  /// Per-second intensity λ_t = exp(r_t) for every bin.
  std::vector<double> Intensity() const;

  /// The fitted intensity as a piecewise-constant function over the
  /// training window.
  Result<workload::PiecewiseConstantIntensity> ToIntensity() const;

  /// \brief Value of the regularized objective (Eq. 1) at this model given
  ///        the training counts; used by convergence tests and ablations.
  ///
  /// loss = -Qᵀr + Δt·1ᵀexp(r) + β1‖D2 r‖₁ + (β2/2)‖DL r‖₂².
  Result<double> Loss(const std::vector<double>& counts) const;

 private:
  NhppConfig config_;
  std::vector<double> r_;
};

}  // namespace rs::core
