/// \file policy_persist.cpp
/// \brief rs::persist serializers for the core planning policies.
///
/// Kept out of sequential_scaler.cpp so the planning hot path and the
/// snapshot codec evolve independently. Construction-time inputs (forecast,
/// pending distribution, option values) are rebuilt from the StrategySpec by
/// the api layer before DeserializeModel runs; these records carry the
/// mutable model state plus enough of the options to cross-check that the
/// spec and the snapshot agree.

#include <cmath>
#include <string>

#include "rs/core/sequential_scaler.hpp"
#include "rs/persist/persist.hpp"

namespace rs::core {

namespace {

constexpr std::uint32_t kRobustModelVersion = 1;
constexpr std::uint32_t kHpCountModelVersion = 1;

const char* VariantName(ScalerVariant variant) {
  switch (variant) {
    case ScalerVariant::kHittingProbability:
      return "hp";
    case ScalerVariant::kResponseTime:
      return "rt";
    case ScalerVariant::kCost:
      return "cost";
  }
  return "?";
}

}  // namespace

Status RobustScalerPolicy::SerializeModel(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagRobustModel);
  writer->WriteU32(kRobustModelVersion);
  writer->WriteU8(static_cast<std::uint8_t>(options_.variant));
  writer->WriteDouble(options_.alpha);
  writer->WriteDouble(options_.rt_excess);
  writer->WriteDouble(options_.idle_budget);
  writer->WriteU64(options_.mc_samples);
  writer->WriteDouble(options_.planning_interval);
  writer->WriteU64(options_.max_creations_per_round);
  writer->WriteDouble(options_.kappa_alpha);
  writer->WriteDouble(options_.local_intensity_window);
  writer->WriteDouble(options_.forecast_origin);
  writer->WriteU64(options_.seed);
  persist::WriteRngState(writer, rng_);
  writer->EndSection();
  return Status::OK();
}

Status RobustScalerPolicy::DeserializeModel(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagRobustModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kRobustModelVersion) {
    return Status::Invalid("RobustScaler model record version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  RS_ASSIGN_OR_RETURN(const std::uint8_t variant_byte, reader->ReadU8());
  if (variant_byte > static_cast<std::uint8_t>(ScalerVariant::kCost)) {
    return Status::Invalid("corrupt RobustScaler variant byte " +
                           std::to_string(variant_byte) + " in snapshot");
  }
  const auto variant = static_cast<ScalerVariant>(variant_byte);
  if (variant != options_.variant) {
    return Status::Invalid(
        std::string("RobustScaler snapshot/spec mismatch: snapshot was "
                    "taken by the ") +
        VariantName(variant) + " variant but the spec rebuilt the " +
        VariantName(options_.variant) + " variant");
  }
  RS_ASSIGN_OR_RETURN(options_.alpha, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options_.rt_excess, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options_.idle_budget, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t mc_samples, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(options_.planning_interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t max_creations, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(options_.kappa_alpha, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options_.local_intensity_window, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options_.forecast_origin, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options_.seed, reader->ReadU64());
  if (!(options_.alpha > 0.0 && options_.alpha < 1.0) ||
      !(options_.kappa_alpha > 0.0 && options_.kappa_alpha < 1.0) ||
      !(options_.planning_interval > 0.0) || mc_samples == 0 ||
      !std::isfinite(options_.forecast_origin)) {
    return Status::Invalid(
        "RobustScaler snapshot carries out-of-domain planner options");
  }
  options_.mc_samples = static_cast<std::size_t>(mc_samples);
  options_.max_creations_per_round = static_cast<std::size_t>(max_creations);
  RS_RETURN_NOT_OK(persist::ReadRngState(reader, &rng_));
  // The κ memo keys on option values that may have just changed.
  kappa_cache_valid_ = false;
  return reader->ExitSection();
}

Status HpCountScaler::SerializeModel(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagHpCountModel);
  writer->WriteU32(kHpCountModelVersion);
  writer->WriteDouble(options_.alpha);
  writer->WriteU64(options_.m);
  writer->WriteU64(options_.mc_samples);
  writer->WriteU64(options_.seed);
  writer->WriteDouble(options_.lambda_bar);
  writer->WriteU64(kappa_);
  writer->WriteU64(arrivals_since_plan_);
  persist::WriteRngState(writer, rng_);
  writer->EndSection();
  return Status::OK();
}

Status HpCountScaler::DeserializeModel(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagHpCountModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kHpCountModelVersion) {
    return Status::Invalid("HP-count model record version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  RS_ASSIGN_OR_RETURN(options_.alpha, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t m, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t mc_samples, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(options_.seed, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(options_.lambda_bar, reader->ReadDouble());
  if (!(options_.alpha > 0.0 && options_.alpha < 1.0) || m == 0 ||
      mc_samples == 0) {
    return Status::Invalid(
        "HP-count snapshot carries out-of-domain planner options");
  }
  options_.m = static_cast<std::size_t>(m);
  options_.mc_samples = static_cast<std::size_t>(mc_samples);
  RS_ASSIGN_OR_RETURN(const std::uint64_t kappa, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t since, reader->ReadU64());
  kappa_ = static_cast<std::size_t>(kappa);
  arrivals_since_plan_ = static_cast<std::size_t>(since);
  RS_RETURN_NOT_OK(persist::ReadRngState(reader, &rng_));
  return reader->ExitSection();
}

}  // namespace rs::core
