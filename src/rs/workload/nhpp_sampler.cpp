#include "rs/workload/nhpp_sampler.hpp"

#include "rs/stats/distributions.hpp"

namespace rs::workload {

Result<std::vector<double>> SampleNhppThinning(stats::Rng* rng,
                                               const AnalyticIntensity& fn,
                                               double rate_bound,
                                               double horizon) {
  if (rng == nullptr) return Status::Invalid("SampleNhppThinning: null rng");
  if (!(rate_bound > 0.0) || !(horizon > 0.0)) {
    return Status::Invalid("SampleNhppThinning: rate_bound, horizon must be > 0");
  }
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += stats::SampleExponential(rng, rate_bound);
    if (t >= horizon) break;
    const double lambda = fn(t);
    if (lambda > rate_bound * (1.0 + 1e-12)) {
      return Status::Invalid(
          "SampleNhppThinning: intensity exceeds rate_bound at t=" +
          std::to_string(t));
    }
    if (rng->NextDouble() * rate_bound < lambda) arrivals.push_back(t);
  }
  return arrivals;
}

Result<std::vector<double>> SampleNhppTimeRescaling(
    stats::Rng* rng, const PiecewiseConstantIntensity& intensity) {
  if (rng == nullptr) {
    return Status::Invalid("SampleNhppTimeRescaling: null rng");
  }
  const double horizon = intensity.horizon();
  const double total = intensity.Cumulative(horizon);
  std::vector<double> arrivals;
  double gamma = 0.0;
  for (;;) {
    gamma += stats::SampleExponential(rng, 1.0);
    if (gamma > total) break;
    RS_ASSIGN_OR_RETURN(const double t, intensity.InverseCumulative(gamma));
    if (t >= horizon) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace rs::workload
