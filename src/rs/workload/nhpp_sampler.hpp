/// \file nhpp_sampler.hpp
/// \brief Sampling arrival times from a non-homogeneous Poisson process,
///        by thinning (Lewis–Shedler) and by time-rescaling (inverse
///        cumulative intensity) — the generative counterpart of the NHPP
///        model of Section V.
#pragma once

#include <vector>

#include "rs/common/status.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::workload {

/// \brief Lewis–Shedler thinning: candidate arrivals from a homogeneous
///        Poisson(rate_bound) process are accepted with probability
///        λ(t)/rate_bound.
///
/// \param fn         target intensity; must satisfy fn(t) <= rate_bound.
/// \param rate_bound dominating constant rate (> 0).
/// \param horizon    sample on [0, horizon).
Result<std::vector<double>> SampleNhppThinning(stats::Rng* rng,
                                               const AnalyticIntensity& fn,
                                               double rate_bound,
                                               double horizon);

/// \brief Time-rescaling sampling: arrival k occurs at Λ⁻¹(γ_k) where γ_k
///        is a unit-rate Poisson process (cumsum of Exp(1)).
///
/// Exact for piecewise-constant intensities; O(total_events + bins).
Result<std::vector<double>> SampleNhppTimeRescaling(
    stats::Rng* rng, const PiecewiseConstantIntensity& intensity);

}  // namespace rs::workload
