/// \file trace.hpp
/// \brief Query trace: the arrival/processing-time sequences the simulator
///        replays (the role of the CRS / Google / Alibaba traces in the
///        paper's experiments).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::workload {

/// One query: when it arrives and how long its processing takes once an
/// instance starts executing it.
struct Query {
  double arrival_time = 0.0;     ///< Seconds from trace start.
  double processing_time = 0.0;  ///< Service duration s_i, seconds.
};

/// \brief An ordered sequence of queries over [0, horizon).
class Trace {
 public:
  Trace() = default;
  Trace(std::vector<Query> queries, double horizon);

  const std::vector<Query>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  double horizon() const { return horizon_; }

  const Query& operator[](std::size_t i) const { return queries_[i]; }

  /// All arrival times, ascending.
  std::vector<double> ArrivalTimes() const;

  /// Mean queries-per-second over the horizon.
  double AverageQps() const;

  /// Sub-trace with arrivals in [t0, t1), re-based so t0 becomes 0.
  Trace Slice(double t0, double t1) const;

  /// Splits at time t into (train, test); test is re-based to start at 0.
  std::pair<Trace, Trace> SplitAt(double t) const;

  /// Sorts queries by arrival time (generators call this once).
  void SortByArrival();

  /// Appends a query (caller must SortByArrival afterwards if unordered).
  void Append(Query q) { queries_.push_back(q); }

  void set_horizon(double horizon) { horizon_ = horizon; }

  /// Writes "arrival_time,processing_time" CSV with a header line.
  Status SaveCsv(const std::string& path) const;

  /// Reads a CSV produced by SaveCsv. Horizon is max arrival (+1s) unless
  /// a larger value is given.
  static Result<Trace> LoadCsv(const std::string& path, double horizon = 0.0);

 private:
  std::vector<Query> queries_;
  double horizon_ = 0.0;
};

}  // namespace rs::workload
