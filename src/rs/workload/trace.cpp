#include "rs/workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace rs::workload {

Trace::Trace(std::vector<Query> queries, double horizon)
    : queries_(std::move(queries)), horizon_(horizon) {
  SortByArrival();
}

std::vector<double> Trace::ArrivalTimes() const {
  std::vector<double> times(queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    times[i] = queries_[i].arrival_time;
  }
  return times;
}

double Trace::AverageQps() const {
  if (horizon_ <= 0.0) return 0.0;
  return static_cast<double>(queries_.size()) / horizon_;
}

Trace Trace::Slice(double t0, double t1) const {
  std::vector<Query> out;
  for (const auto& q : queries_) {
    if (q.arrival_time >= t0 && q.arrival_time < t1) {
      out.push_back({q.arrival_time - t0, q.processing_time});
    }
  }
  return Trace(std::move(out), t1 - t0);
}

std::pair<Trace, Trace> Trace::SplitAt(double t) const {
  return {Slice(0.0, t), Slice(t, horizon_)};
}

void Trace::SortByArrival() {
  std::sort(queries_.begin(), queries_.end(),
            [](const Query& a, const Query& b) {
              return a.arrival_time < b.arrival_time;
            });
}

Status Trace::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("Trace::SaveCsv: cannot open " + path);
  out << "arrival_time,processing_time\n";
  out.precision(12);
  for (const auto& q : queries_) {
    out << q.arrival_time << "," << q.processing_time << "\n";
  }
  if (!out) return Status::IoError("Trace::SaveCsv: write failed for " + path);
  return Status::OK();
}

Result<Trace> Trace::LoadCsv(const std::string& path, double horizon) {
  std::ifstream in(path);
  if (!in) return Status::IoError("Trace::LoadCsv: cannot open " + path);
  std::string line;
  std::vector<Query> queries;
  bool first = true;
  double max_arrival = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("arrival_time", 0) == 0) continue;  // Header.
    }
    std::istringstream ss(line);
    Query q;
    char comma = 0;
    if (!(ss >> q.arrival_time >> comma >> q.processing_time) || comma != ',') {
      return Status::IoError("Trace::LoadCsv: malformed line: " + line);
    }
    max_arrival = std::max(max_arrival, q.arrival_time);
    queries.push_back(q);
  }
  return Trace(std::move(queries), std::max(horizon, max_arrival + 1.0));
}

}  // namespace rs::workload
