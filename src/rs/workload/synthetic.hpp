/// \file synthetic.hpp
/// \brief Synthetic stand-ins for the paper's three real traces (CRS,
///        Google cluster 2019, Alibaba cluster 2018) — see the substitution
///        table in DESIGN.md. Each generator returns the trace plus its
///        ground-truth intensity so accuracy experiments (Table III style)
///        can score estimators.
#pragma once

#include <string>

#include "rs/common/status.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/trace.hpp"

namespace rs::workload {

/// A generated trace together with the intensity that produced it.
struct SyntheticTrace {
  Trace trace;
  PiecewiseConstantIntensity intensity;   ///< Ground-truth λ(t).
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);  ///< τ_i model.
  std::string name;
};

/// Parameters shared by the trace generators.
struct SyntheticTraceOptions {
  std::uint64_t seed = 7;
  /// Multiplies the intensity level (scales total query count).
  double scale = 1.0;
  /// Log-normal multiplicative noise sigma applied to the intensity bins.
  double noise_sigma = 0.3;
  /// Rate of sporadic outlier bins (probability per bin of a 5–15× spike).
  double outlier_rate = 0.0;
};

/// \brief CRS-like trace: 4 weeks, weekly + daily multiplicative pattern,
///        very low base traffic (avg QPS ≈ 0.01), strong noise, heavy-tailed
///        (log-normal) processing times with mean ≈ 179 s, pending 13 s.
///
/// Paper counterpart: container registry service trace, 21,059 queries
/// over 4 weeks, "quite noisy ... but seems to have a weekly pattern".
Result<SyntheticTrace> MakeCrsLikeTrace(const SyntheticTraceOptions& options = {});

/// \brief Google-like trace: 24 h, diurnal base with recurrent 2-hourly
///        spikes, ≈ 20k queries, exponential processing times.
///
/// Paper counterpart: Google cluster 2019 "cluster b" job trace, 20,254
/// queries over 24 h with recurrent spikes.
Result<SyntheticTrace> MakeGoogleLikeTrace(const SyntheticTraceOptions& options = {});

/// \brief Alibaba-like trace: 5 days, diurnal pattern with recurrent spikes
///        plus one *anomalous burst* in the middle of day 4 (the "unexpected
///        burst/spike on the fourth day" that challenges prediction).
///
/// Paper counterpart: Alibaba cluster 2018, 503,850 records over 5 days;
/// scale defaults to 0.1 so a default run is ≈ 50k queries (see DESIGN.md).
Result<SyntheticTrace> MakeAlibabaLikeTrace(SyntheticTraceOptions options = {});

/// Bounds of the Alibaba-like anomalous burst window (seconds from start),
/// exposed so robustness experiments can remove exactly the anomaly.
struct BurstWindow {
  double begin = 0.0;
  double end = 0.0;
};
BurstWindow AlibabaBurstWindow();

/// \brief Samples a trace from an arbitrary intensity with the given
///        processing-time distribution (used by the Fig. 8 / Table I / III
///        simulation studies).
Result<Trace> MakeTraceFromIntensity(stats::Rng* rng,
                                     const PiecewiseConstantIntensity& intensity,
                                     const stats::DurationDistribution& processing);

}  // namespace rs::workload
