#include "rs/workload/synthetic.hpp"

#include <cmath>
#include <utility>

#include "rs/workload/nhpp_sampler.hpp"

namespace rs::workload {

namespace {

constexpr double kDay = 86400.0;
constexpr double kWeek = 7.0 * kDay;

/// Applies multiplicative log-normal noise and sporadic outlier spikes to a
/// clean intensity profile.
std::vector<double> Corrupt(std::vector<double> rates, stats::Rng* rng,
                            double noise_sigma, double outlier_rate) {
  for (double& r : rates) {
    if (noise_sigma > 0.0) {
      r *= std::exp(noise_sigma * rng->NextGaussian() -
                    0.5 * noise_sigma * noise_sigma);
    }
    if (outlier_rate > 0.0 && rng->NextDouble() < outlier_rate) {
      r *= stats::SampleUniform(rng, 5.0, 15.0);
    }
  }
  return rates;
}

Result<SyntheticTrace> Finish(std::vector<double> rates, double dt,
                              stats::Rng* rng,
                              const stats::DurationDistribution& processing,
                              const stats::DurationDistribution& pending,
                              std::string name) {
  RS_ASSIGN_OR_RETURN(auto intensity,
                      PiecewiseConstantIntensity::Make(std::move(rates), dt));
  RS_ASSIGN_OR_RETURN(auto trace,
                      MakeTraceFromIntensity(rng, intensity, processing));
  SyntheticTrace out;
  out.trace = std::move(trace);
  out.intensity = std::move(intensity);
  out.pending = pending;
  out.name = std::move(name);
  return out;
}

}  // namespace

Result<Trace> MakeTraceFromIntensity(
    stats::Rng* rng, const PiecewiseConstantIntensity& intensity,
    const stats::DurationDistribution& processing) {
  if (rng == nullptr) return Status::Invalid("MakeTraceFromIntensity: null rng");
  RS_ASSIGN_OR_RETURN(auto arrivals, SampleNhppTimeRescaling(rng, intensity));
  std::vector<Query> queries;
  queries.reserve(arrivals.size());
  for (double t : arrivals) {
    queries.push_back({t, processing.Sample(rng)});
  }
  return Trace(std::move(queries), intensity.horizon());
}

Result<SyntheticTrace> MakeCrsLikeTrace(const SyntheticTraceOptions& options) {
  stats::Rng rng(options.seed);
  const double dt = 600.0;  // 10-min bins; weekly period = 1008 bins.
  const double horizon = 4.0 * kWeek;
  const auto bins = static_cast<std::size_t>(horizon / dt);
  std::vector<double> rates(bins);
  for (std::size_t t = 0; t < bins; ++t) {
    const double sec = (static_cast<double>(t) + 0.5) * dt;
    const double day_phase = std::fmod(sec, kDay) / kDay;
    const double week_phase = std::fmod(sec, kWeek) / kWeek;
    // Weekly pattern: working days busier than the weekend tail.
    const double weekly = week_phase < 5.0 / 7.0 ? 1.0 : 0.35;
    // Daily pattern: daytime bump.
    const double daily =
        0.4 + 0.6 * std::max(0.0, std::sin(M_PI * (day_phase - 0.25) / 0.6));
    rates[t] = options.scale * 0.016 * weekly * daily;
  }
  rates = Corrupt(std::move(rates), &rng, options.noise_sigma,
                  options.outlier_rate > 0.0 ? options.outlier_rate : 0.002);
  // Heavy-tailed processing (Table II shows RT quantiles out to ~6800 s).
  const auto processing = stats::DurationDistribution::LogNormal(179.0, 2.0);
  const auto pending = stats::DurationDistribution::Deterministic(13.0);
  return Finish(std::move(rates), dt, &rng, processing, pending, "crs-like");
}

Result<SyntheticTrace> MakeGoogleLikeTrace(const SyntheticTraceOptions& options) {
  stats::Rng rng(options.seed + 1);
  const double dt = 60.0;
  const double horizon = kDay;
  const auto bins = static_cast<std::size_t>(horizon / dt);
  std::vector<double> rates(bins);
  const double spike_period = 2.0 * 3600.0;
  for (std::size_t t = 0; t < bins; ++t) {
    const double sec = (static_cast<double>(t) + 0.5) * dt;
    const double day_phase = sec / kDay;
    const double base =
        0.12 + 0.10 * std::sin(2.0 * M_PI * (day_phase - 0.3));
    // Recurrent spikes: 10-minute windows every two hours at ~8x base.
    const double in_cycle = std::fmod(sec, spike_period);
    const double spike = in_cycle < 600.0 ? 1.1 : 0.0;
    rates[t] = options.scale * (std::max(0.02, base) + spike);
  }
  rates = Corrupt(std::move(rates), &rng, options.noise_sigma * 0.7, 0.0);
  const auto processing = stats::DurationDistribution::Exponential(45.0);
  const auto pending = stats::DurationDistribution::Deterministic(13.0);
  return Finish(std::move(rates), dt, &rng, processing, pending, "google-like");
}

BurstWindow AlibabaBurstWindow() {
  // Middle of day 4 (0-indexed day 3), 30 minutes long.
  return {3.0 * kDay + 0.5 * kDay, 3.0 * kDay + 0.5 * kDay + 1800.0};
}

Result<SyntheticTrace> MakeAlibabaLikeTrace(SyntheticTraceOptions options) {
  if (options.scale == 1.0) options.scale = 0.1;  // Default ≈ 50k queries.
  stats::Rng rng(options.seed + 2);
  const double dt = 60.0;
  const double horizon = 5.0 * kDay;
  const auto bins = static_cast<std::size_t>(horizon / dt);
  std::vector<double> rates(bins);
  const BurstWindow burst = AlibabaBurstWindow();
  for (std::size_t t = 0; t < bins; ++t) {
    const double sec = (static_cast<double>(t) + 0.5) * dt;
    const double day_phase = std::fmod(sec, kDay) / kDay;
    const double base =
        0.9 + 0.7 * std::sin(2.0 * M_PI * (day_phase - 0.35));
    // Recurrent spikes every 6 hours (batch-job submission waves).
    const double in_cycle = std::fmod(sec, 6.0 * 3600.0);
    const double spike = in_cycle < 900.0 ? 6.0 : 0.0;
    double rate = std::max(0.1, base) + spike;
    // The day-4 anomalous burst: an unpredicted 12x surge.
    if (sec >= burst.begin && sec < burst.end) rate += 12.0;
    // The shape above averages ≈ 1.15 QPS, matching the paper trace's
    // 503,850 records / 5 days at scale = 1; the default scale 0.1 yields
    // the documented ≈ 50k-query bench workload.
    rates[t] = options.scale * rate;
  }
  rates = Corrupt(std::move(rates), &rng, options.noise_sigma * 0.5, 0.0);
  const auto processing = stats::DurationDistribution::Exponential(30.0);
  const auto pending = stats::DurationDistribution::Deterministic(13.0);
  return Finish(std::move(rates), dt, &rng, processing, pending, "alibaba-like");
}

}  // namespace rs::workload
