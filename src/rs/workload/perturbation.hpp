/// \file perturbation.hpp
/// \brief Trace modifications used by the robustness experiments:
///        the Fig. 6–7 perturbation protocol, the Fig. 9 / Table II missing
///        data injection, and anomaly (burst) removal.
#pragma once

#include "rs/common/status.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/trace.hpp"

namespace rs::workload {

/// Parameters of the Fig. 6–7 perturbation protocol.
struct PerturbationOptions {
  /// "c": how many extra copies of the window's queries are added.
  double add_factor = 1.0;
  /// Period between perturbations (paper: every one hour).
  double period = 3600.0;
  /// Width of each deleted / boosted window (paper: five minutes).
  double window = 300.0;
  /// Offset of the deletion window within each period (paper: at the start).
  double delete_offset = 0.0;
  /// Offset of the addition window (paper: starting from the sixth minute).
  double add_offset = 360.0;
  std::uint64_t seed = 99;
};

/// \brief Applies the paper's perturbation: per period, queries inside the
///        deletion window are removed, and `add_factor`× more queries are
///        added inside the addition window (copies of the window's queries
///        with jittered arrivals; an empty window draws uniform arrivals).
Result<Trace> PerturbTrace(const Trace& trace, const PerturbationOptions& options);

/// Removes every query with arrival in [begin, end) — missing-data
/// injection (Fig. 9: "removing all the queries in one entire day").
Trace RemoveWindow(const Trace& trace, double begin, double end);

/// \brief Caps the arrival rate inside [begin, end) by keeping each query
///        with probability keep_prob — used to erase the Alibaba-like burst
///        ("we erase the burst ... to make the pattern more clear").
Result<Trace> ThinWindow(const Trace& trace, double begin, double end,
                         double keep_prob, std::uint64_t seed = 101);

}  // namespace rs::workload
