#include "rs/workload/perturbation.hpp"

#include <cmath>

#include "rs/stats/distributions.hpp"

namespace rs::workload {

Result<Trace> PerturbTrace(const Trace& trace,
                           const PerturbationOptions& options) {
  if (!(options.period > 0.0) || !(options.window > 0.0)) {
    return Status::Invalid("PerturbTrace: period and window must be > 0");
  }
  if (options.add_factor < 0.0) {
    return Status::Invalid("PerturbTrace: add_factor must be >= 0");
  }
  stats::Rng rng(options.seed);
  std::vector<Query> out;
  out.reserve(trace.size());

  // Pass 1: drop queries inside deletion windows; collect addition windows'
  // contents for replication.
  const double horizon = trace.horizon();
  std::vector<std::vector<Query>> add_window_queries;
  const auto num_periods =
      static_cast<std::size_t>(std::ceil(horizon / options.period));
  add_window_queries.resize(num_periods);

  for (const auto& q : trace.queries()) {
    const double in_period = std::fmod(q.arrival_time, options.period);
    const bool deleted = in_period >= options.delete_offset &&
                         in_period < options.delete_offset + options.window;
    if (deleted) continue;
    out.push_back(q);
    const bool in_add = in_period >= options.add_offset &&
                        in_period < options.add_offset + options.window;
    if (in_add) {
      const auto p = static_cast<std::size_t>(q.arrival_time / options.period);
      add_window_queries[p].push_back(q);
    }
  }

  // Pass 2: add add_factor× more queries to each addition window.
  for (std::size_t p = 0; p < num_periods; ++p) {
    const double win_begin =
        static_cast<double>(p) * options.period + options.add_offset;
    const double win_end = std::min(win_begin + options.window, horizon);
    if (win_begin >= horizon) break;
    const auto& contents = add_window_queries[p];
    const double target =
        options.add_factor * static_cast<double>(contents.size());
    const auto num_extra = static_cast<std::size_t>(std::floor(target)) +
                           ((rng.NextDouble() < target - std::floor(target)) ? 1 : 0);
    for (std::size_t k = 0; k < num_extra; ++k) {
      Query extra;
      if (!contents.empty()) {
        const auto src = contents[rng.NextBounded(contents.size())];
        extra.processing_time = src.processing_time;
      } else {
        extra.processing_time = 60.0;
      }
      extra.arrival_time = stats::SampleUniform(&rng, win_begin, win_end);
      out.push_back(extra);
    }
  }
  return Trace(std::move(out), horizon);
}

Trace RemoveWindow(const Trace& trace, double begin, double end) {
  std::vector<Query> out;
  out.reserve(trace.size());
  for (const auto& q : trace.queries()) {
    if (q.arrival_time >= begin && q.arrival_time < end) continue;
    out.push_back(q);
  }
  return Trace(std::move(out), trace.horizon());
}

Result<Trace> ThinWindow(const Trace& trace, double begin, double end,
                         double keep_prob, std::uint64_t seed) {
  if (!(keep_prob >= 0.0) || !(keep_prob <= 1.0)) {
    return Status::Invalid("ThinWindow: keep_prob must lie in [0, 1]");
  }
  stats::Rng rng(seed);
  std::vector<Query> out;
  out.reserve(trace.size());
  for (const auto& q : trace.queries()) {
    const bool inside = q.arrival_time >= begin && q.arrival_time < end;
    if (inside && rng.NextDouble() >= keep_prob) continue;
    out.push_back(q);
  }
  return Trace(std::move(out), trace.horizon());
}

}  // namespace rs::workload
