/// \file intensity.hpp
/// \brief Arrival-intensity functions λ(t): piecewise-constant (the form the
///        NHPP model learns) and the two analytic intensities the paper's
///        simulation studies use (Fig. 8 scalability, Table III
///        regularization).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::workload {

/// \brief λ(t) constant within each bin of width dt — the representation
///        produced by the NHPP model (λ_t = exp(r_t)) and consumed by the
///        time-rescaling sampler and the arrival predictor.
class PiecewiseConstantIntensity {
 public:
  PiecewiseConstantIntensity() = default;

  /// rates[t] applies on [t·dt, (t+1)·dt); dt > 0, all rates >= 0.
  static Result<PiecewiseConstantIntensity> Make(std::vector<double> rates,
                                                 double dt);

  double dt() const { return dt_; }
  std::size_t bins() const { return rates_.size(); }
  double horizon() const { return dt_ * static_cast<double>(rates_.size()); }
  const std::vector<double>& rates() const { return rates_; }

  /// λ(t); beyond the horizon the last rate extends (constant tail) so the
  /// predictor can always look slightly past the planned window.
  double Rate(double t) const;

  /// Cumulative intensity Λ(t) = ∫₀ᵗ λ, exact for the piecewise form.
  double Cumulative(double t) const;

  /// Inverse cumulative: smallest t with Λ(t) >= target. Uses the constant
  /// tail beyond the horizon; target must be >= 0 and the tail rate > 0 if
  /// the target exceeds Λ(horizon).
  Result<double> InverseCumulative(double target) const;

  /// \brief Element-wise InverseCumulative over a whole target batch, with
  ///        bitwise-identical results to the scalar calls.
  ///
  /// Sorts the targets once (into `order`, a reusable index scratch buffer)
  /// and resolves them in a single monotone sweep over the cumulative grid:
  /// O(R log R + bins touched) total instead of R independent binary
  /// searches wrapped in Result. `out` is resized to targets.size(); on a
  /// non-OK status (negative target, empty intensity, or a target beyond
  /// the horizon with zero tail rate — the scalar failure cases) its
  /// contents are unspecified.
  Status InverseCumulativeBatch(const std::vector<double>& targets,
                                std::vector<double>* out,
                                std::vector<std::uint32_t>* order) const;

  /// Same monotone sweep over targets the caller guarantees are already
  /// ascending (e.g. sorted in place because their original order no longer
  /// matters): no argsort at all. Writes out[i] for targets[i]; results are
  /// ascending and bitwise-identical to the scalar calls. `out` may alias
  /// `targets`.
  Status InverseCumulativeAscending(const double* targets, std::size_t n,
                                    double* out) const;

  /// Max rate over all bins (thinning envelope, κ upper bound λ̄).
  double MaxRate() const;

  /// Mean rate over all bins.
  double MeanRate() const;

 private:
  std::vector<double> rates_;
  std::vector<double> cum_;  ///< cum_[t] = Λ(t·dt); size bins()+1.
  double dt_ = 1.0;
};

/// Analytic intensity function (arbitrary λ(t) >= 0).
using AnalyticIntensity = std::function<double(double)>;

/// Discretizes an analytic intensity to bins of width dt over [0, horizon)
/// using midpoint values.
Result<PiecewiseConstantIntensity> Discretize(const AnalyticIntensity& fn,
                                              double dt, double horizon);

/// The Fig. 8 scalability intensity:
/// λ(t) = peak · 4⁴⁰ u⁴⁰ (1−u)⁴⁰ + 0.001, u = (t mod 3600)/3600.
/// The paper states peak QPS up to 10⁴; with the printed formula the
/// bracket maxes at 1 so `peak` scales the spike height (default 10000).
AnalyticIntensity MakeScalabilityIntensity(double peak = 10000.0);

/// The Table III regularization intensity:
/// λ(t) = 4¹⁰ u¹⁰ (1−u)¹⁰ + 0.1, u = (t mod 86400)/86400 (period = 1 day).
AnalyticIntensity MakeRegularizationIntensity();

}  // namespace rs::workload
