#include "rs/workload/intensity.hpp"

#include <algorithm>
#include <cmath>

namespace rs::workload {

Result<PiecewiseConstantIntensity> PiecewiseConstantIntensity::Make(
    std::vector<double> rates, double dt) {
  if (!(dt > 0.0)) {
    return Status::Invalid("PiecewiseConstantIntensity: dt must be > 0");
  }
  if (rates.empty()) {
    return Status::Invalid("PiecewiseConstantIntensity: empty rates");
  }
  for (double r : rates) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      return Status::Invalid("PiecewiseConstantIntensity: rates must be >= 0");
    }
  }
  PiecewiseConstantIntensity out;
  out.rates_ = std::move(rates);
  out.dt_ = dt;
  out.cum_.resize(out.rates_.size() + 1);
  out.cum_[0] = 0.0;
  for (std::size_t t = 0; t < out.rates_.size(); ++t) {
    out.cum_[t + 1] = out.cum_[t] + out.rates_[t] * dt;
  }
  return out;
}

double PiecewiseConstantIntensity::Rate(double t) const {
  if (rates_.empty()) return 0.0;
  if (t < 0.0) return rates_.front();
  const auto bin = static_cast<std::size_t>(t / dt_);
  if (bin >= rates_.size()) return rates_.back();
  return rates_[bin];
}

double PiecewiseConstantIntensity::Cumulative(double t) const {
  if (rates_.empty() || t <= 0.0) return 0.0;
  const double h = horizon();
  if (t >= h) return cum_.back() + (t - h) * rates_.back();
  const auto bin = static_cast<std::size_t>(t / dt_);
  const double within = t - static_cast<double>(bin) * dt_;
  return cum_[bin] + rates_[bin] * within;
}

Result<double> PiecewiseConstantIntensity::InverseCumulative(
    double target) const {
  if (target < 0.0) return Status::Invalid("InverseCumulative: target < 0");
  if (rates_.empty()) return Status::Invalid("InverseCumulative: empty");
  if (target == 0.0) return 0.0;  // Λ(0) = 0 already meets the target.
  if (target > cum_.back()) {
    const double tail = rates_.back();
    if (tail <= 0.0) {
      return Status::OutOfRange(
          "InverseCumulative: target beyond horizon with zero tail rate");
    }
    return horizon() + (target - cum_.back()) / tail;
  }
  // Binary search the first cumulative boundary >= target.
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), target);
  const auto idx = static_cast<std::size_t>(it - cum_.begin());
  if (idx == 0) return 0.0;
  const std::size_t bin = idx - 1;
  const double remaining = target - cum_[bin];
  const double rate = rates_[bin];
  if (rate <= 0.0) return static_cast<double>(idx) * dt_;
  return static_cast<double>(bin) * dt_ + remaining / rate;
}

namespace {

/// The monotone inverse-cumulative sweep shared by the batch entry points.
/// Visits targets in ascending order (as presented by `target_at`): the
/// "first cumulative boundary >= target" index is then non-decreasing, so
/// one binary search for the smallest target plus a forward walk replaces R
/// independent searches. Every per-element formula is the scalar
/// InverseCumulative one, so results match it bitwise.
template <typename TargetAt, typename PutResult>
Status SweepAscending(const std::vector<double>& cum,
                      const std::vector<double>& rates, double dt,
                      std::size_t n, const TargetAt& target_at,
                      const PutResult& put) {
  const double tail = rates.back();
  const double total = cum.back();
  const double h = dt * static_cast<double>(rates.size());
  std::size_t idx = 0;
  bool idx_seeded = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double target = target_at(i);
    if (target < 0.0) return Status::Invalid("InverseCumulative: target < 0");
    if (target == 0.0) {
      put(i, 0.0);
      continue;
    }
    if (target > total) {
      if (tail <= 0.0) {
        return Status::OutOfRange(
            "InverseCumulative: target beyond horizon with zero tail rate");
      }
      put(i, h + (target - total) / tail);
      continue;
    }
    if (!idx_seeded) {
      idx = static_cast<std::size_t>(
          std::lower_bound(cum.begin(), cum.end(), target) - cum.begin());
      idx_seeded = true;
    }
    while (cum[idx] < target) ++idx;
    if (idx == 0) {
      put(i, 0.0);
      continue;
    }
    const std::size_t bin = idx - 1;
    const double remaining = target - cum[bin];
    const double rate = rates[bin];
    put(i, rate <= 0.0
               ? static_cast<double>(idx) * dt
               : static_cast<double>(bin) * dt + remaining / rate);
  }
  return Status::OK();
}

}  // namespace

Status PiecewiseConstantIntensity::InverseCumulativeBatch(
    const std::vector<double>& targets, std::vector<double>* out,
    std::vector<std::uint32_t>* order) const {
  if (out == nullptr || order == nullptr) {
    return Status::Invalid("InverseCumulativeBatch: null output");
  }
  if (rates_.empty()) return Status::Invalid("InverseCumulative: empty");
  const std::size_t n = targets.size();
  out->resize(n);
  order->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*order)[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order->begin(), order->end(),
            [&targets](std::uint32_t a, std::uint32_t b) {
              return targets[a] < targets[b];
            });
  const std::uint32_t* perm = order->data();
  double* results = out->data();
  return SweepAscending(
      cum_, rates_, dt_, n,
      [&targets, perm](std::size_t i) { return targets[perm[i]]; },
      [results, perm](std::size_t i, double v) { results[perm[i]] = v; });
}

Status PiecewiseConstantIntensity::InverseCumulativeAscending(
    const double* targets, std::size_t n, double* out) const {
  if (targets == nullptr || out == nullptr) {
    return Status::Invalid("InverseCumulativeAscending: null buffers");
  }
  if (rates_.empty()) return Status::Invalid("InverseCumulative: empty");
  return SweepAscending(
      cum_, rates_, dt_, n, [targets](std::size_t i) { return targets[i]; },
      [out](std::size_t i, double v) { out[i] = v; });
}

double PiecewiseConstantIntensity::MaxRate() const {
  double m = 0.0;
  for (double r : rates_) m = std::max(m, r);
  return m;
}

double PiecewiseConstantIntensity::MeanRate() const {
  if (rates_.empty()) return 0.0;
  double acc = 0.0;
  for (double r : rates_) acc += r;
  return acc / static_cast<double>(rates_.size());
}

Result<PiecewiseConstantIntensity> Discretize(const AnalyticIntensity& fn,
                                              double dt, double horizon) {
  if (!(dt > 0.0) || !(horizon > 0.0)) {
    return Status::Invalid("Discretize: dt and horizon must be > 0");
  }
  const auto bins = static_cast<std::size_t>(std::ceil(horizon / dt));
  std::vector<double> rates(bins);
  for (std::size_t t = 0; t < bins; ++t) {
    rates[t] = std::max(0.0, fn((static_cast<double>(t) + 0.5) * dt));
  }
  return PiecewiseConstantIntensity::Make(std::move(rates), dt);
}

AnalyticIntensity MakeScalabilityIntensity(double peak) {
  return [peak](double t) {
    const double u = std::fmod(t, 3600.0) / 3600.0;
    // 4⁴⁰ u⁴⁰ (1−u)⁴⁰ = (4u(1-u))⁴⁰ computed in log-space for stability.
    const double base = 4.0 * u * (1.0 - u);
    const double bump = base <= 0.0 ? 0.0 : std::exp(40.0 * std::log(base));
    return peak * bump + 0.001;
  };
}

AnalyticIntensity MakeRegularizationIntensity() {
  return [](double t) {
    const double u = std::fmod(t, 86400.0) / 86400.0;
    const double base = 4.0 * u * (1.0 - u);
    const double bump = base <= 0.0 ? 0.0 : std::exp(10.0 * std::log(base));
    return bump + 0.1;
  };
}

}  // namespace rs::workload
