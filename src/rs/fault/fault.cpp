#include "rs/fault/fault.hpp"

#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>

#include "rs/common/logging.hpp"

namespace rs::fault {

namespace {

/// SplitMix64: tiny, seedable, and good enough to roll storm schedules.
/// Deliberately self-contained so the fault layer depends only on common.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double NextUnit(std::uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

const std::vector<SiteInfo>& RegisteredSites() {
  // The instrumented surface. Keep in sync with docs/ARCHITECTURE.md's
  // fault-site catalogue; fault_test cross-checks every entry fires.
  static const std::vector<SiteInfo> kSites = {
      {"fleet.observe",
       "ScalerFleet::Observe input path (scope: tenant) — a malformed or "
       "dropped arrival, rejected before the serving mirror is touched",
       false},
      {"fleet.plan",
       "per-tenant plan boundary (scope: tenant), fired before the scaler "
       "mirror advances — the degraded tenant serves its last-good plan",
       true},
      {"train.refit",
       "background retrain pool task (scope: tenant), before the fit — the "
       "last-good model keeps serving and the retry backs off",
       true},
      {"persist.write",
       "AtomicWriteFile temp-file write — a short/failed snapshot write, "
       "retried without clobbering the last good snapshot",
       false},
      {"persist.rename",
       "AtomicWriteFile commit rename — the snapshot swap itself fails; the "
       "previous file stays intact",
       false},
      {"wal.append",
       "journal record append — a failed/short write to the active segment; "
       "retried, then the journal fail-stops (serving continues unjournaled "
       "and recovery still replays the durable prefix)",
       false},
      {"wal.fsync",
       "journal fsync at a policy-mandated durability point — the flush "
       "fails; retried, then the journal fail-stops",
       false},
      {"wal.rotate",
       "journal segment rotation — creating/switching to the next segment "
       "file fails; retried, then the journal fail-stops",
       false},
  };
  return kSites;
}

struct ScopedFaultInjection::Injector {
  explicit Injector(FaultPlan p) : plan(std::move(p)) {
    for (const FaultRule& rule : plan.rules) {
      rules_by_site[rule.site].push_back(&rule);
    }
  }

  Status OnHit(const char* site, std::string_view scope) {
    const Fault* fired = nullptr;
    const FaultRule* rule_fired = nullptr;
    std::uint64_t count = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      count = ++counters[std::make_pair(std::string(site),
                                        std::string(scope))];
      SiteStats& site_stats = stats[site];
      ++site_stats.hits;
      const auto it = rules_by_site.find(site);
      if (it != rules_by_site.end()) {
        for (const FaultRule* rule : it->second) {
          if (!rule->scope.empty() && rule->scope != scope) continue;
          const bool match =
              count == rule->hit ||
              (rule->period > 0 && count > rule->hit &&
               (count - rule->hit) % rule->period == 0);
          if (!match) continue;
          ++site_stats.fired;
          ++fired_total;
          fired = &rule->fault;
          rule_fired = rule;
          break;
        }
      }
    }
    if (fired == nullptr) return Status::OK();
    std::string message = fired->message;
    if (message.empty()) {
      std::ostringstream msg;
      msg << "injected fault at " << site;
      if (!scope.empty()) msg << " [" << scope << ']';
      msg << ", hit " << count;
      if (rule_fired->period > 0) msg << " (period " << rule_fired->period
                                      << ')';
      message = msg.str();
    }
    if (fired->kind == FaultKind::kThrow) throw InjectedFault(message);
    return Status(fired->code, std::move(message));
  }

  const FaultPlan plan;
  std::map<std::string, std::vector<const FaultRule*>> rules_by_site;

  mutable std::mutex mu;
  std::map<std::pair<std::string, std::string>, std::uint64_t> counters;
  std::map<std::string, SiteStats> stats;
  std::uint64_t fired_total = 0;
};

namespace {

/// The one installed injector (null = injection disarmed). Acquire pairs
/// with the release store in ScopedFaultInjection's constructor so pool
/// workers hitting a site see the fully built plan.
std::atomic<ScopedFaultInjection::Injector*> g_injector{nullptr};

}  // namespace

bool InjectionActive() {
  return g_injector.load(std::memory_order_relaxed) != nullptr;
}

Status Hit(const char* site) { return Hit(site, std::string_view()); }

Status Hit(const char* site, std::string_view scope) {
  ScopedFaultInjection::Injector* injector =
      g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::OK();
  return injector->OnHit(site, scope);
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : injector_(std::make_unique<Injector>(std::move(plan))) {
  Injector* expected = nullptr;
  RS_CHECK(g_injector.compare_exchange_strong(expected, injector_.get(),
                                              std::memory_order_release))
      << "ScopedFaultInjection: another injection is already installed "
         "(one at a time)";
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_injector.store(nullptr, std::memory_order_release);
}

std::map<std::string, SiteStats> ScopedFaultInjection::Stats() const {
  std::lock_guard<std::mutex> lock(injector_->mu);
  return injector_->stats;
}

std::uint64_t ScopedFaultInjection::total_fired() const {
  std::lock_guard<std::mutex> lock(injector_->mu);
  return injector_->fired_total;
}

FaultPlan MakeStormPlan(std::uint64_t seed, const StormOptions& options) {
  // Mix the seed so storms 0, 1, 2, ... are unrelated schedules.
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 0x85ebca6b'c2b2ae35ull;
  static const StatusCode kCodes[] = {StatusCode::kIoError,
                                      StatusCode::kRuntimeError,
                                      StatusCode::kNotConverged};
  FaultPlan plan;
  for (const SiteInfo& site : RegisteredSites()) {
    for (std::uint64_t hit = 1; hit <= options.horizon_hits; ++hit) {
      if (NextUnit(&state) >= options.fire_probability) continue;
      FaultRule rule;
      rule.site = site.name;
      rule.hit = hit;
      const std::uint64_t roll = SplitMix64(&state);
      if (options.include_throws && site.may_throw && (roll & 3u) == 0) {
        rule.fault.kind = FaultKind::kThrow;
      } else {
        rule.fault.code = kCodes[roll % (sizeof(kCodes) / sizeof(kCodes[0]))];
      }
      plan.rules.push_back(std::move(rule));
    }
  }
  return plan;
}

}  // namespace rs::fault
