/// \file fault.hpp
/// \brief Deterministic, seedable fault injection — the rs::fault subsystem.
///
/// Production components fail: disks fill mid-snapshot, retrains throw,
/// callers feed garbage timestamps. This layer lets tests and chaos benches
/// inject those failures at *named sites* in the serving/persist/train
/// paths, on an exactly replayable schedule:
///
///   - Code under test declares injection sites with RS_FAULT_POINT("name")
///     (or the _SCOPED variant, which keys the hit counter by an extra
///     scope string — the tenant name at per-tenant sites). With no
///     injection installed the site costs one relaxed atomic load; compiled
///     with -DRS_NO_FAULT_INJECTION the macros expand to nothing at all.
///
///   - A FaultPlan maps (site, scope, hit index) to a Fault. Hit counters
///     are kept per (site, scope) pair, and every instrumented site is
///     either driven from the fleet's single caller thread or scoped by
///     tenant (per-tenant operations are sequential), so a fixed plan fires
///     at exactly the same operations regardless of worker-pool size —
///     chaos runs replay byte-identically across worker counts {0, 1, 8}.
///
///   - MakeStormPlan(seed) rolls a random plan over the whole site
///     catalogue, so "the chaos run that failed" is reproducible from one
///     integer.
///
/// Installation is RAII and process-global (one injection active at a
/// time): construct a ScopedFaultInjection with the plan, run the scenario,
/// read back per-site statistics, destroy to disarm. The injector is safe
/// to hit from pool workers; installation/teardown must not race live
/// traffic (install before serving, destroy after).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::fault {

/// How a firing site reports the failure to its caller.
enum class FaultKind : std::uint8_t {
  /// The site returns this Status to its caller (the common case: the
  /// degradation machinery must turn it into fallback, never a crash).
  kStatusError = 0,
  /// The site throws InjectedFault — only meaningful at sites marked
  /// `may_throw` in the catalogue (pool tasks, plan closures), where an
  /// exception handler exists by contract. At other sites the exception
  /// propagates to the caller of the instrumented function.
  kThrow = 1,
};

/// The exception thrown by FaultKind::kThrow sites.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One injectable failure.
struct Fault {
  FaultKind kind = FaultKind::kStatusError;
  StatusCode code = StatusCode::kIoError;  ///< kStatusError payload.
  std::string message;  ///< Empty: a default naming site/scope/hit.
};

/// \brief One schedule entry: fire `fault` at the `hit`-th execution of
///        `site` (1-based, counted per (site, scope) pair).
///
/// An empty `scope` matches every scope *independently* — the rule fires at
/// hit `hit` of each tenant's own counter, which is what keeps storm plans
/// deterministic under any worker count. `period > 0` re-fires every
/// `period` further hits (hit, hit+period, hit+2*period, ...); 0 fires
/// exactly once per matching scope.
struct FaultRule {
  std::string site;
  std::string scope;
  std::uint64_t hit = 1;
  std::uint64_t period = 0;
  Fault fault;
};

/// A complete, replayable fault schedule.
struct FaultPlan {
  std::vector<FaultRule> rules;
};

/// Catalogue entry for one registered injection site.
struct SiteInfo {
  const char* name;
  const char* description;
  /// True at sites running inside an exception handler (pool tasks, plan
  /// closures) where FaultKind::kThrow is safe to schedule.
  bool may_throw;
};

/// The registered injection sites, the instrumented surface MakeStormPlan
/// storms over (documented in docs/ARCHITECTURE.md).
const std::vector<SiteInfo>& RegisteredSites();

/// Per-site execution statistics of one injection session.
struct SiteStats {
  std::uint64_t hits = 0;   ///< Times the site executed.
  std::uint64_t fired = 0;  ///< Times a rule matched and a fault fired.
};

/// True while a ScopedFaultInjection is installed.
bool InjectionActive();

/// \brief The macro target: consults the installed plan (if any) for
///        `site` at the current hit count and returns/throws the scheduled
///        fault. OK — and nearly free — when no injection is installed.
Status Hit(const char* site);
Status Hit(const char* site, std::string_view scope);

/// \brief RAII installation of a FaultPlan (process-global, one at a time;
///        constructing while another is installed aborts — programmer
///        error).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  /// Per-site statistics so far (keyed by site name; scopes are folded).
  std::map<std::string, SiteStats> Stats() const;

  /// Total faults fired across all sites so far.
  std::uint64_t total_fired() const;

  /// Opaque implementation record (public only so the file-local Hit()
  /// dispatch can name the type; defined in fault.cpp).
  struct Injector;

 private:
  std::unique_ptr<Injector> injector_;
};

/// Knobs for MakeStormPlan.
struct StormOptions {
  /// Per-hit firing probability at each site (rolled independently per
  /// hit index up to `horizon_hits`).
  double fire_probability = 0.02;
  /// Hit indices 1..horizon_hits are rolled per site; later hits never
  /// fire. Keep >= the longest per-scope operation count of the scenario.
  std::uint64_t horizon_hits = 256;
  /// Schedule FaultKind::kThrow (at may_throw sites only) for a quarter of
  /// the fired hits; off makes every fault a Status error.
  bool include_throws = true;
};

/// \brief Rolls a seeded random FaultPlan over every registered site:
///        the chaos storm. Same seed + options → identical plan, so a
///        failing storm reproduces from one integer.
FaultPlan MakeStormPlan(std::uint64_t seed, const StormOptions& options = {});

}  // namespace rs::fault

// -- Injection-site macros ----------------------------------------------------
//
// Use inside functions returning Status (or Result<T>): the macro returns
// the injected error to the caller. Sites that must retry or translate the
// fault call rs::fault::Hit() directly instead.
#if defined(RS_NO_FAULT_INJECTION)
#define RS_FAULT_POINT(site) \
  do {                       \
  } while (false)
#define RS_FAULT_POINT_SCOPED(site, scope) \
  do {                                     \
  } while (false)
#else
#define RS_FAULT_POINT(site) RS_RETURN_NOT_OK(::rs::fault::Hit(site))
#define RS_FAULT_POINT_SCOPED(site, scope) \
  RS_RETURN_NOT_OK(::rs::fault::Hit(site, scope))
#endif
