#include "rs/simulator/decision_clock.hpp"

#include <chrono>

namespace rs::sim {

double SteadyDecisionClock::Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace rs::sim
