#include "rs/simulator/decision_clock.hpp"

#include <chrono>

namespace rs::sim {

double SteadyDecisionClock::Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

FakeDecisionClockBank::FakeDecisionClockBank(double step_seconds,
                                             std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) clocks_.emplace_back(step_seconds);
}

}  // namespace rs::sim
