/// \file environment.hpp
/// \brief Idealized vs "real" environment presets (Table IV).
///
/// The paper's real deployment (Alibaba Serverless Kubernetes) differs from
/// the simulated environment in that (a) decision computation time delays
/// scaling actions, (b) pod creation has extra API latency, and (c) pod
/// startup times jitter around their nominal value. These presets turn
/// those channels on/off on top of the same engine.
#pragma once

#include "rs/simulator/engine.hpp"

namespace rs::sim {

/// Parameters of the realistic preset.
struct RealEnvironmentOptions {
  /// Cluster API round-trip added to each creation (seconds).
  double creation_latency = 0.4;
  /// Pod startup time jitter fraction (τ multiplied by U(1-j, 1+j)).
  double pending_jitter = 0.15;
  /// Charge strategy wall-clock planning time to the simulation clock.
  bool charge_decision_wall_time = true;
};

/// Engine options for the idealized (pure simulation) environment:
/// decisions are free and pod startup is exactly the nominal distribution.
EngineOptions MakeIdealizedEnvironment(
    const stats::DurationDistribution& pending, std::uint64_t seed);

/// Engine options for the realistic environment preset described above.
EngineOptions MakeRealEnvironment(const stats::DurationDistribution& pending,
                                  std::uint64_t seed,
                                  const RealEnvironmentOptions& options = {});

}  // namespace rs::sim
