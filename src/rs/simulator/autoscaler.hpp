/// \file autoscaler.hpp
/// \brief The interface every scaling strategy implements (BP, AdapBP and
///        the three RobustScaler variants all plug into the same engine).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::common {
class ThreadPool;
}  // namespace rs::common

namespace rs::persist {
class Writer;
class Reader;
}  // namespace rs::persist

namespace rs::sim {

/// Sentinel for Autoscaler::history_requirement(): the strategy may read
/// arbitrarily old arrivals, so serving state must retain the full history.
inline constexpr double kUnboundedHistory =
    std::numeric_limits<double>::infinity();

/// Snapshot of the simulation state handed to strategies when they decide.
struct SimContext {
  double now = 0.0;                 ///< Current simulation time (seconds).
  std::size_t queries_arrived = 0;  ///< Arrivals so far (= instances consumed).
  /// Unconsumed instances that exist (ready or still pending startup).
  std::size_t instances_alive = 0;
  /// Of those, already fully started (warm and idle).
  std::size_t instances_ready = 0;
  /// Creation actions scheduled for the future but not yet executed.
  std::size_t scheduled_creations = 0;
  /// Arrival times of all queries seen so far (ascending); never null
  /// during callbacks. Strategies may inspect recent traffic (AdapBP).
  const std::vector<double>* arrival_history = nullptr;

  /// Instances that can still serve upcoming queries: alive + scheduled.
  std::size_t Outstanding() const {
    return instances_alive + scheduled_creations;
  }
};

/// Actions returned by a strategy: create instances at the given absolute
/// times (>= now; earlier values are clamped to now), and/or delete
/// `deletions` unconsumed instances (latest-created idle ones first).
struct ScalingAction {
  std::vector<double> creation_times;
  std::size_t deletions = 0;

  bool Empty() const { return creation_times.empty() && deletions == 0; }
};

/// \brief Base class for autoscaling strategies driven by the engine.
///
/// The engine calls Initialize once at simulation start, OnPlanningTick
/// every planning_interval seconds, and OnQueryArrival after each arrival
/// is matched (cold_start tells whether the engine had to create the
/// instance reactively).
class Autoscaler {
 public:
  virtual ~Autoscaler() = default;

  /// Strategy name for reports.
  virtual const char* name() const = 0;

  /// Interval between OnPlanningTick calls; <= 0 disables ticks.
  virtual double planning_interval() const { return 0.0; }

  /// \brief How many seconds of arrival history (behind `ctx.now`) the
  ///        strategy reads through SimContext::arrival_history.
  ///
  /// Long-running serving state (api::Scaler) uses this bound as its
  /// retention floor: arrivals older than `now - history_requirement()` may
  /// be compacted away without changing any decision the strategy makes.
  /// Return 0 when the strategy never reads the history, a finite window
  /// when it only inspects recent traffic (AdapBP), and kUnboundedHistory
  /// (the conservative default) when old arrivals stay relevant forever
  /// (e.g. periodic model refitting).
  virtual double history_requirement() const { return kUnboundedHistory; }

  /// \brief Hands the strategy a worker pool for its internal planning
  ///        fan-out (nullptr plans inline on the calling thread).
  ///
  /// Optional: the default ignores it. Strategies that accept a pool must
  /// keep their emitted actions byte-identical for every pool size — the
  /// pool is purely a wall-time knob (the RobustScaler planners shard their
  /// Monte Carlo rounds with fixed blocking, so this holds by
  /// construction). The pool must outlive the strategy's planning calls;
  /// rs::api::ScalerFleet uses this hook to feed per-tenant plan shards
  /// into its own tenant-batching pool (one work queue, no nested pools).
  virtual void SetPlanningPool(common::ThreadPool* pool) { (void)pool; }

  /// Bytes of persistent planning scratch the strategy currently retains
  /// (Monte Carlo workspaces and the like); 0 when it keeps none. Serving
  /// snapshots aggregate this so long-lived fleets can watch workspace
  /// memory track tenant sizes.
  virtual std::size_t planning_workspace_bytes() const { return 0; }

  /// \brief Writes the strategy's *mutable* model state (adaptive targets,
  ///        RNG position, learned estimates) into a durable snapshot.
  ///
  /// Construction-time parameters travel separately (the api layer
  /// re-creates the strategy from its StrategySpec before deserializing),
  /// so implementations persist exactly what a freshly constructed instance
  /// would not already have. Purely derived caches and planning scratch
  /// (kappa memoization, Monte Carlo workspaces) must NOT be serialized:
  /// they only affect speed, never the emitted actions. The default refuses
  /// with NotImplemented so strategies that opt out fail loudly at snapshot
  /// time, never silently restoring half a model.
  virtual Status SerializeModel(persist::Writer* writer) const {
    (void)writer;
    return Status::NotImplemented(
        std::string("strategy '") + name() +
        "' does not implement model serialization; it cannot be included in "
        "a durable serving snapshot");
  }

  /// Restores the state written by SerializeModel() onto a strategy rebuilt
  /// from the same StrategySpec; the continuation is byte-identical to the
  /// snapshotted instance. Must validate what it reads (snapshots can be
  /// old or corrupt) and return Status rather than crash.
  virtual Status DeserializeModel(persist::Reader* reader) {
    (void)reader;
    return Status::NotImplemented(
        std::string("strategy '") + name() +
        "' does not implement model deserialization; snapshots containing "
        "it cannot be restored");
  }

  virtual ScalingAction Initialize(const SimContext& ctx) {
    (void)ctx;
    return {};
  }

  virtual ScalingAction OnPlanningTick(const SimContext& ctx) {
    (void)ctx;
    return {};
  }

  virtual ScalingAction OnQueryArrival(const SimContext& ctx, bool cold_start) {
    (void)ctx;
    (void)cold_start;
    return {};
  }
};

}  // namespace rs::sim
