/// \file metrics.hpp
/// \brief Per-query / per-instance outcome records and the evaluation
///        metrics of Section VII-A3: hit rate, total & relative cost,
///        average RT, RT quantiles (Table II), and the 50-query-window QoS
///        variance of Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::sim {

/// What happened to one query during replay.
struct QueryOutcome {
  double arrival_time = 0.0;
  double processing_time = 0.0;
  double wait_time = 0.0;      ///< Time between arrival and processing start.
  double response_time = 0.0;  ///< wait + processing (RT_i of Section VI-A).
  bool hit = false;            ///< Instance ready upon arrival (HP event).
  bool cold_start = false;     ///< Engine had to create the instance reactively.
};

/// Lifecycle of one instance.
struct InstanceOutcome {
  double creation_time = 0.0;
  double ready_time = 0.0;
  double end_time = 0.0;        ///< Deletion: after processing, explicit
                                ///< scale-in, or simulation end.
  double lifecycle_cost = 0.0;  ///< end_time - creation_time (cost_i).
  bool served_query = false;
};

/// Full replay record.
struct SimulationResult {
  std::vector<QueryOutcome> queries;
  std::vector<InstanceOutcome> instances;
  double horizon = 0.0;
};

/// Headline metrics (Section VII-A3).
struct Metrics {
  double hit_rate = 0.0;      ///< Fraction of queries with a ready instance.
  double total_cost = 0.0;    ///< Sum of instance lifecycle lengths (s).
  double rt_avg = 0.0;        ///< Mean response time (s).
  double rt_p50 = 0.0;
  double rt_p75 = 0.0;
  double rt_p95 = 0.0;
  double rt_p99 = 0.0;
  double rt_p999 = 0.0;
  double wait_avg = 0.0;
  double cold_start_rate = 0.0;
  std::size_t num_queries = 0;
  std::size_t num_instances = 0;
};

/// Computes headline metrics from a replay record.
Result<Metrics> ComputeMetrics(const SimulationResult& result);

/// relative_cost = total_cost / reference_cost (reference: pure reactive
/// BP with B = 0 on the same trace).
double RelativeCost(const Metrics& metrics, double reference_cost);

/// \brief Fig. 5 construction: group values into consecutive windows of
///        `window` queries, average each window, and return the variance of
///        those window means.
Result<double> WindowedQosVariance(const std::vector<double>& per_query_values,
                                   std::size_t window = 50);

/// Response times of all queries, in arrival order.
std::vector<double> ResponseTimes(const SimulationResult& result);

/// Hit indicators (0/1) of all queries, in arrival order.
std::vector<double> HitIndicators(const SimulationResult& result);

}  // namespace rs::sim
