/// \file decision_clock.hpp
/// \brief Injectable clock used to charge decision wall time (Table IV's
///        "real environment"). The engine and the online serving mirror
///        both bracket every OnPlanningTick with two readings of the same
///        abstraction, so replay/serving parity extends to
///        charge_decision_wall_time runs: under a pair of FakeDecisionClock
///        instances with identical scripts, the two paths charge identical
///        decision latencies and schedule identical creation times.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "rs/common/status.hpp"

namespace rs::sim {

/// \brief Source of monotonic wall time for decision-latency charging.
///
/// Consecutive readings bracket one strategy decision; the engine charges
/// `Now() - Now()` (after minus before) against the simulation clock. The
/// clock is only read when EngineOptions::charge_decision_wall_time is set,
/// so implementations may count calls (FakeDecisionClock does).
class DecisionClock {
 public:
  virtual ~DecisionClock() = default;

  /// Current monotonic time in seconds. Successive calls must not decrease.
  virtual double Now() = 0;

  /// \brief Exports the clock's logical position (current time + readings
  ///        taken) into a durable snapshot, if it has one.
  ///
  /// Returns false when the clock has no meaningful position to persist —
  /// the SteadyDecisionClock default, whose readings are genuine wall time
  /// that a restored process cannot (and must not) resume. Deterministic
  /// clocks override this so that snapshot/restore keeps charged decision
  /// latencies — and therefore the action sequence — bit-identical across
  /// the cut.
  virtual bool ExportPosition(double* time, std::uint64_t* readings) const {
    (void)time;
    (void)readings;
    return false;
  }

  /// Restores a position previously captured by ExportPosition(). The
  /// default refuses: restoring a scripted position onto a wall clock would
  /// silently break determinism, so only clocks that export a position
  /// accept one.
  virtual Status ImportPosition(double time, std::uint64_t readings) {
    (void)time;
    (void)readings;
    return Status::NotImplemented(
        "this DecisionClock has no restorable position (inject a "
        "deterministic clock, e.g. FakeDecisionClock, to restore a snapshot "
        "taken with one)");
  }
};

/// \brief Runs one planning decision, charging its wall time when enabled.
///
/// Returns the decision's action; `*effective_out` becomes the earliest
/// time the action may take effect: now + max(0, elapsed) when charging,
/// `now` unchanged otherwise (the clock is not read at all in that case).
/// The engine and the serving mirror both charge through this single
/// definition, so the replay/serving parity contract cannot drift between
/// the two event loops.
template <typename DecideFn>
auto ChargedDecision(DecisionClock& clock, bool charge, double now,
                     double* effective_out, DecideFn&& decide) {
  const double start = charge ? clock.Now() : 0.0;
  auto action = decide();
  if (charge) {
    const double elapsed = clock.Now() - start;
    *effective_out = now + (elapsed > 0.0 ? elapsed : 0.0);
  } else {
    *effective_out = now;
  }
  return action;
}

/// Real wall clock (std::chrono::steady_clock) — the production default.
class SteadyDecisionClock final : public DecisionClock {
 public:
  double Now() override;
};

/// \brief Deterministic clock for tests: every reading advances the
///        internal time by a fixed step.
///
/// A decision bracketed by two readings is therefore charged exactly
/// `step_seconds`, independent of the host machine — the property the
/// engine/mirror parity tests rely on. Give each of the two compared runs
/// its own instance (they each read the clock independently).
class FakeDecisionClock final : public DecisionClock {
 public:
  explicit FakeDecisionClock(double step_seconds) : step_(step_seconds) {}

  double Now() override {
    time_ += step_;
    ++readings_;
    return time_;
  }

  /// Number of readings taken so far (tests assert the clock was consulted
  /// only when charging is enabled).
  std::size_t readings() const { return readings_; }

  bool ExportPosition(double* time, std::uint64_t* readings) const override {
    *time = time_;
    *readings = readings_;
    return true;
  }

  Status ImportPosition(double time, std::uint64_t readings) override {
    time_ = time;
    readings_ = static_cast<std::size_t>(readings);
    return Status::OK();
  }

 private:
  double step_;
  double time_ = 0.0;
  std::size_t readings_ = 0;
};

/// \brief The deterministic way to "share" a fake clock across the tenants
///        of a multi-tenant server: a bank of independent FakeDecisionClock
///        instances with one common step.
///
/// A single mutable FakeDecisionClock must not be read by concurrently
/// planning tenants — the scheduling interleaving would decide which
/// reading each tenant sees and determinism would be lost (and the
/// unsynchronized counter is a data race outright). The bank instead hands
/// each tenant its own identically-scripted clock at a stable address, so
/// an api::ScalerFleet charging decision wall time stays byte-identical to
/// N sequential Scalers no matter how its worker pool schedules tenants.
/// Clocks are addressed by index; pair them with tenants in registration
/// order (tests/property_test.cpp does exactly that on both sides of the
/// fleet-vs-sequential parity check).
class FakeDecisionClockBank {
 public:
  /// `size` clocks, each advancing `step_seconds` per reading.
  FakeDecisionClockBank(double step_seconds, std::size_t size);

  std::size_t size() const { return clocks_.size(); }

  /// The `index`-th clock (stable address for the bank's lifetime).
  FakeDecisionClock* clock(std::size_t index) { return &clocks_[index]; }

 private:
  std::deque<FakeDecisionClock> clocks_;
};

}  // namespace rs::sim
