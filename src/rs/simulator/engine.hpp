/// \file engine.hpp
/// \brief Discrete-event replay of the scaling-per-query dynamics
///        (Algorithm 1): queries consume instances FIFO, wait for pending
///        ones, or trigger reactive cold starts that cancel the earliest
///        still-scheduled creation.
#pragma once

#include <cstdint>

#include "rs/common/status.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/simulator/decision_clock.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/workload/trace.hpp"

namespace rs::sim {

/// Engine configuration.
struct EngineOptions {
  /// Instance pending/startup time distribution τ_i (paper experiments:
  /// deterministic 13 s).
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);

  /// Seed for pending-time draws and any strategy-independent randomness.
  std::uint64_t seed = 20220414;

  /// When true, the wall-clock time the strategy spends inside
  /// OnPlanningTick is charged to the simulation: the returned creations
  /// cannot take effect earlier than now + elapsed wall time. Models the
  /// paper's "real environment" (Table IV) where decision computation
  /// delays scaling actions.
  bool charge_decision_wall_time = false;

  /// Clock used to measure decision wall time when
  /// charge_decision_wall_time is set; not owned. Must outlive every use
  /// of these options: the Simulate() run, or — when passed to
  /// api::Scaler::ConfigureServing — the entire serving session, including
  /// sessions restarted via ResetServing(). nullptr selects a real
  /// SteadyDecisionClock. Inject a FakeDecisionClock to make the charged
  /// latencies deterministic (tests, parity checks).
  DecisionClock* decision_clock = nullptr;

  /// Fixed extra latency added to every instance creation (cluster API
  /// round-trip in the real environment; 0 in the idealized one).
  double creation_latency = 0.0;

  /// Pending times are multiplied by Uniform(1 - jitter, 1 + jitter);
  /// 0 reproduces the idealized environment exactly.
  double pending_jitter = 0.0;

  /// Unconsumed instances at trace end are charged until the horizon.
  bool charge_idle_until_horizon = true;
};

/// \brief Validates one EngineOptions the way the registry validates
///        strategy parameters: out-of-range physical knobs fail with an
///        actionable message instead of silently producing nonsense.
///
/// Shared by Simulate() and api::Scaler::ConfigureServing so the replay and
/// serving paths reject exactly the same configurations.
Status ValidateEngineOptions(const EngineOptions& options);

/// \brief Replays `trace` under `strategy` and returns the full per-query /
///        per-instance record.
///
/// Event ordering at equal timestamps: scheduled creations execute before
/// arrivals (an instance created at exactly ξ_i counts as pending for that
/// query, matching Algorithm 1's x_i <= ξ_i < x_i + τ_i branch).
///
/// Horizon boundary: events at exactly `trace.horizon()` are still
/// processed (the window is closed on the right). This matches the online
/// serving mirror, where Scaler::Plan(t) processes the planning tick at
/// exactly `t` — so a replay and a serving loop drained to the horizon see
/// the same event sequence, including a tick landing exactly there.
Result<SimulationResult> Simulate(const workload::Trace& trace,
                                  Autoscaler* strategy,
                                  const EngineOptions& options = {});

}  // namespace rs::sim
