/// \file engine.hpp
/// \brief Discrete-event replay of the scaling-per-query dynamics
///        (Algorithm 1): queries consume instances FIFO, wait for pending
///        ones, or trigger reactive cold starts that cancel the earliest
///        still-scheduled creation.
#pragma once

#include <cstdint>

#include "rs/common/status.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/workload/trace.hpp"

namespace rs::sim {

/// Engine configuration.
struct EngineOptions {
  /// Instance pending/startup time distribution τ_i (paper experiments:
  /// deterministic 13 s).
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);

  /// Seed for pending-time draws and any strategy-independent randomness.
  std::uint64_t seed = 20220414;

  /// When true, the wall-clock time the strategy spends inside
  /// OnPlanningTick is charged to the simulation: the returned creations
  /// cannot take effect earlier than now + elapsed wall time. Models the
  /// paper's "real environment" (Table IV) where decision computation
  /// delays scaling actions.
  bool charge_decision_wall_time = false;

  /// Fixed extra latency added to every instance creation (cluster API
  /// round-trip in the real environment; 0 in the idealized one).
  double creation_latency = 0.0;

  /// Pending times are multiplied by Uniform(1 - jitter, 1 + jitter);
  /// 0 reproduces the idealized environment exactly.
  double pending_jitter = 0.0;

  /// Unconsumed instances at trace end are charged until the horizon.
  bool charge_idle_until_horizon = true;
};

/// \brief Replays `trace` under `strategy` and returns the full per-query /
///        per-instance record.
///
/// Event ordering at equal timestamps: scheduled creations execute before
/// arrivals (an instance created at exactly ξ_i counts as pending for that
/// query, matching Algorithm 1's x_i <= ξ_i < x_i + τ_i branch).
Result<SimulationResult> Simulate(const workload::Trace& trace,
                                  Autoscaler* strategy,
                                  const EngineOptions& options = {});

}  // namespace rs::sim
