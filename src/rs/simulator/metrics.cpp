#include "rs/simulator/metrics.hpp"

#include <algorithm>

#include "rs/stats/empirical.hpp"

namespace rs::sim {

Result<Metrics> ComputeMetrics(const SimulationResult& result) {
  Metrics m;
  m.num_queries = result.queries.size();
  m.num_instances = result.instances.size();
  if (result.queries.empty()) return m;

  std::vector<double> rts;
  rts.reserve(result.queries.size());
  std::size_t hits = 0;
  std::size_t cold = 0;
  double wait_acc = 0.0;
  for (const auto& q : result.queries) {
    rts.push_back(q.response_time);
    wait_acc += q.wait_time;
    if (q.hit) ++hits;
    if (q.cold_start) ++cold;
  }
  const auto n = static_cast<double>(result.queries.size());
  m.hit_rate = static_cast<double>(hits) / n;
  m.cold_start_rate = static_cast<double>(cold) / n;
  m.rt_avg = stats::Mean(rts);
  m.wait_avg = wait_acc / n;

  std::sort(rts.begin(), rts.end());
  RS_ASSIGN_OR_RETURN(m.rt_p50, stats::QuantileSorted(rts, 0.50));
  RS_ASSIGN_OR_RETURN(m.rt_p75, stats::QuantileSorted(rts, 0.75));
  RS_ASSIGN_OR_RETURN(m.rt_p95, stats::QuantileSorted(rts, 0.95));
  RS_ASSIGN_OR_RETURN(m.rt_p99, stats::QuantileSorted(rts, 0.99));
  RS_ASSIGN_OR_RETURN(m.rt_p999, stats::QuantileSorted(rts, 0.999));

  for (const auto& inst : result.instances) {
    m.total_cost += inst.lifecycle_cost;
  }
  return m;
}

double RelativeCost(const Metrics& metrics, double reference_cost) {
  if (reference_cost <= 0.0) return 0.0;
  return metrics.total_cost / reference_cost;
}

Result<double> WindowedQosVariance(const std::vector<double>& per_query_values,
                                   std::size_t window) {
  if (window == 0) return Status::Invalid("WindowedQosVariance: window >= 1");
  const auto means = stats::WindowedMeans(per_query_values, window);
  if (means.size() < 2) return 0.0;
  return stats::Variance(means);
}

std::vector<double> ResponseTimes(const SimulationResult& result) {
  std::vector<double> rts;
  rts.reserve(result.queries.size());
  for (const auto& q : result.queries) rts.push_back(q.response_time);
  return rts;
}

std::vector<double> HitIndicators(const SimulationResult& result) {
  std::vector<double> hits;
  hits.reserve(result.queries.size());
  for (const auto& q : result.queries) hits.push_back(q.hit ? 1.0 : 0.0);
  return hits;
}

}  // namespace rs::sim
