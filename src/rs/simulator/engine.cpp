#include "rs/simulator/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>
#include <vector>

#include "rs/common/logging.hpp"
#include "rs/stats/rng.hpp"

namespace rs::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// An unconsumed instance in creation order.
struct LiveInstance {
  std::size_t id = 0;  ///< Index into SimulationResult::instances.
  double ready_time = 0.0;
};

class EngineState {
 public:
  EngineState(const workload::Trace& trace, Autoscaler* strategy,
              const EngineOptions& options)
      : trace_(trace),
        strategy_(strategy),
        options_(options),
        rng_(options.seed),
        clock_(options.decision_clock != nullptr ? options.decision_clock
                                                 : &default_clock_),
        arrivals_seen_() {
    result_.horizon = trace.horizon();
  }

  Result<SimulationResult> Run() {
    const auto& queries = trace_.queries();
    const double horizon = trace_.horizon();
    const double tick = strategy_->planning_interval();

    // Initial planning at t = 0.
    ApplyAction(strategy_->Initialize(MakeContext(0.0)), 0.0);

    double next_tick = tick > 0.0 ? 0.0 : kInf;
    std::size_t qi = 0;
    for (;;) {
      const double next_arrival =
          qi < queries.size() ? queries[qi].arrival_time : kInf;
      const double next_creation =
          schedule_.empty() ? kInf : schedule_.top();
      const double next_event =
          std::min({next_arrival, next_creation, next_tick});
      // Horizon boundary: the window is closed on the right — an event at
      // exactly `horizon` is still processed, matching the serving mirror's
      // Plan(t)-processes-the-tick-at-t semantics (tests/api_test.cpp pins
      // a planning tick landing exactly on the horizon).
      if (next_event == kInf || next_event > horizon) break;

      if (next_tick <= next_creation && next_tick <= next_arrival) {
        // Planning tick (ties: plan first so fresh decisions see state
        // before this instant's creations/arrivals are processed — the
        // decisions themselves cannot act before `now` anyway).
        const double now = next_tick;
        double effective = now;
        ScalingAction action = ChargedDecision(
            *clock_, options_.charge_decision_wall_time, now, &effective,
            [&] { return strategy_->OnPlanningTick(MakeContext(now)); });
        ApplyAction(std::move(action), effective);
        next_tick = now + tick;
        continue;
      }
      if (next_creation <= next_arrival) {
        CreateInstance(next_creation);
        schedule_.pop();
        continue;
      }
      // Query arrival.
      ProcessArrival(queries[qi]);
      ++qi;
    }

    // Wind down: charge idle instances to the horizon.
    if (options_.charge_idle_until_horizon) {
      for (const auto& inst : live_) {
        auto& rec = result_.instances[inst.id];
        rec.end_time = horizon;
        rec.lifecycle_cost = horizon - rec.creation_time;
      }
    }
    return std::move(result_);
  }

 private:
  SimContext MakeContext(double now) {
    SimContext ctx;
    ctx.now = now;
    ctx.queries_arrived = arrivals_seen_.size();
    ctx.instances_alive = live_.size();
    ctx.instances_ready = CountReady(now);
    ctx.scheduled_creations = schedule_.size();
    ctx.arrival_history = &arrivals_seen_;
    return ctx;
  }

  std::size_t CountReady(double now) const {
    std::size_t ready = 0;
    for (const auto& inst : live_) {
      if (inst.ready_time <= now) ++ready;
    }
    return ready;
  }

  void ApplyAction(ScalingAction action, double now) {
    for (double t : action.creation_times) {
      schedule_.push(std::max(t, now));
    }
    // Scale-in: drop latest-created unconsumed instances first (they have
    // absorbed the least sunk cost).
    for (std::size_t k = 0; k < action.deletions && !live_.empty(); ++k) {
      const LiveInstance inst = live_.back();
      live_.pop_back();
      auto& rec = result_.instances[inst.id];
      rec.end_time = now;
      rec.lifecycle_cost = std::max(0.0, now - rec.creation_time);
    }
  }

  /// Executes a creation action at time t: the instance becomes ready at
  /// t + creation_latency + jittered pending time.
  void CreateInstance(double t) {
    InstanceOutcome rec;
    rec.creation_time = t;
    double pending = options_.pending.Sample(&rng_);
    if (options_.pending_jitter > 0.0) {
      pending *= 1.0 + options_.pending_jitter * (2.0 * rng_.NextDouble() - 1.0);
      pending = std::max(0.0, pending);
    }
    rec.ready_time = t + options_.creation_latency + pending;
    rec.end_time = rec.ready_time;  // Updated on consumption / wind-down.
    const std::size_t id = result_.instances.size();
    result_.instances.push_back(rec);
    live_.push_back({id, rec.ready_time});
  }

  void ProcessArrival(const workload::Query& query) {
    const double xi = query.arrival_time;
    QueryOutcome out;
    out.arrival_time = xi;
    out.processing_time = query.processing_time;

    if (live_.empty()) {
      // Cold start (Algorithm 1 line 7): create reactively and cancel the
      // earliest still-scheduled creation — that creation was intended for
      // this query.
      CreateInstance(xi);
      if (!schedule_.empty()) {
        // The cancelled creation never materializes: drop it silently.
        schedule_.pop();
      }
      out.cold_start = true;
    }
    const LiveInstance inst = live_.front();
    live_.pop_front();
    auto& rec = result_.instances[inst.id];
    rec.served_query = true;

    if (inst.ready_time <= xi) {
      // Hit: processing starts immediately (Algorithm 1 line 3).
      out.hit = true;
      out.wait_time = 0.0;
    } else {
      // Pending: wait until the instance finishes startup (line 5).
      out.hit = false;
      out.wait_time = inst.ready_time - xi;
    }
    out.response_time = out.wait_time + out.processing_time;
    // Lifecycle: creation -> processing completion (Section VI-A cost_i).
    rec.end_time = xi + out.wait_time + out.processing_time;
    rec.lifecycle_cost = rec.end_time - rec.creation_time;

    arrivals_seen_.push_back(xi);
    result_.queries.push_back(out);

    ApplyAction(strategy_->OnQueryArrival(MakeContext(xi), out.cold_start), xi);
  }

  const workload::Trace& trace_;
  Autoscaler* strategy_;
  EngineOptions options_;
  stats::Rng rng_;
  SteadyDecisionClock default_clock_;
  DecisionClock* clock_;

  std::priority_queue<double, std::vector<double>, std::greater<>> schedule_;
  std::deque<LiveInstance> live_;
  std::vector<double> arrivals_seen_;
  SimulationResult result_;
};

}  // namespace

Status ValidateEngineOptions(const EngineOptions& options) {
  if (!(options.creation_latency >= 0.0) ||
      !std::isfinite(options.creation_latency)) {
    std::ostringstream msg;
    msg << "EngineOptions: creation_latency must be finite and >= 0 s, got "
        << options.creation_latency;
    return Status::Invalid(msg.str());
  }
  if (!(options.pending_jitter >= 0.0) || !(options.pending_jitter <= 1.0)) {
    std::ostringstream msg;
    msg << "EngineOptions: pending_jitter must be in [0, 1], got "
        << options.pending_jitter;
    return Status::Invalid(msg.str());
  }
  return Status::OK();
}

Result<SimulationResult> Simulate(const workload::Trace& trace,
                                  Autoscaler* strategy,
                                  const EngineOptions& options) {
  if (strategy == nullptr) return Status::Invalid("Simulate: null strategy");
  if (trace.horizon() <= 0.0) {
    return Status::Invalid("Simulate: trace horizon must be positive");
  }
  RS_RETURN_NOT_OK(ValidateEngineOptions(options));
  EngineState state(trace, strategy, options);
  return state.Run();
}

}  // namespace rs::sim
