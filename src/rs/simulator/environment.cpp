#include "rs/simulator/environment.hpp"

namespace rs::sim {

EngineOptions MakeIdealizedEnvironment(
    const stats::DurationDistribution& pending, std::uint64_t seed) {
  EngineOptions opts;
  opts.pending = pending;
  opts.seed = seed;
  opts.charge_decision_wall_time = false;
  opts.creation_latency = 0.0;
  opts.pending_jitter = 0.0;
  return opts;
}

EngineOptions MakeRealEnvironment(const stats::DurationDistribution& pending,
                                  std::uint64_t seed,
                                  const RealEnvironmentOptions& options) {
  EngineOptions opts;
  opts.pending = pending;
  opts.seed = seed;
  opts.charge_decision_wall_time = options.charge_decision_wall_time;
  opts.creation_latency = options.creation_latency;
  opts.pending_jitter = options.pending_jitter;
  return opts;
}

}  // namespace rs::sim
