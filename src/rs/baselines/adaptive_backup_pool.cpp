#include "rs/baselines/adaptive_backup_pool.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "rs/common/logging.hpp"
#include "rs/persist/persist.hpp"

namespace rs::baseline {

namespace {
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

AdaptiveBackupPool::AdaptiveBackupPool(double multiplier,
                                       double update_interval,
                                       double estimate_window)
    : multiplier_(multiplier),
      update_interval_(update_interval),
      estimate_window_(estimate_window) {
  RS_CHECK(multiplier >= 0.0) << "AdapBP multiplier must be >= 0";
  RS_CHECK(update_interval > 0.0 && estimate_window > 0.0)
      << "AdapBP intervals must be positive";
}

sim::ScalingAction AdaptiveBackupPool::OnPlanningTick(
    const sim::SimContext& ctx) {
  // Estimate current QPS from arrivals in the trailing window.
  const auto& history = *ctx.arrival_history;
  const double window_begin = std::max(0.0, ctx.now - estimate_window_);
  const double window_len = ctx.now - window_begin;
  std::size_t count = 0;
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (*it < window_begin) break;
    ++count;
  }
  const double qps =
      window_len > 0.0 ? static_cast<double>(count) / window_len : 0.0;
  target_ = static_cast<std::size_t>(std::llround(qps * multiplier_));

  sim::ScalingAction action;
  const std::size_t outstanding = ctx.Outstanding();
  if (outstanding < target_) {
    action.creation_times.assign(target_ - outstanding, ctx.now);
  } else if (outstanding > target_) {
    action.deletions = outstanding - target_;
  }
  return action;
}

sim::ScalingAction AdaptiveBackupPool::OnQueryArrival(
    const sim::SimContext& ctx, bool cold_start) {
  (void)cold_start;
  sim::ScalingAction action;
  const std::size_t outstanding = ctx.Outstanding();
  if (outstanding < target_) {
    action.creation_times.assign(target_ - outstanding, ctx.now);
  }
  return action;
}

Status AdaptiveBackupPool::SerializeModel(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagAdaptiveModel);
  writer->WriteU32(kModelVersion);
  writer->WriteDouble(multiplier_);
  writer->WriteDouble(update_interval_);
  writer->WriteDouble(estimate_window_);
  writer->WriteU64(target_);
  writer->EndSection();
  return Status::OK();
}

Status AdaptiveBackupPool::DeserializeModel(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagAdaptiveModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kModelVersion) {
    return Status::Invalid("AdapBP model record version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  RS_ASSIGN_OR_RETURN(multiplier_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(update_interval_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(estimate_window_, reader->ReadDouble());
  if (!(multiplier_ >= 0.0) || !(update_interval_ > 0.0) ||
      !(estimate_window_ > 0.0)) {
    return Status::Invalid(
        "AdapBP snapshot carries out-of-domain parameters (multiplier must "
        "be >= 0, intervals positive)");
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t target, reader->ReadU64());
  target_ = static_cast<std::size_t>(target);
  return reader->ExitSection();
}

}  // namespace rs::baseline
