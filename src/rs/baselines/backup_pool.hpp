/// \file backup_pool.hpp
/// \brief Backup Pool (BP) baseline: constantly maintains a pool of B
///        instances; each consumed instance is replenished immediately.
///        B = 0 is the pure reactive strategy (Section VII-A1).
#pragma once

#include <cstddef>

#include "rs/simulator/autoscaler.hpp"

namespace rs::baseline {

class BackupPool : public sim::Autoscaler {
 public:
  /// \param pool_size B, the number of instances kept warm.
  explicit BackupPool(std::size_t pool_size) : pool_size_(pool_size) {}

  const char* name() const override { return "BP"; }
  /// BP never reads the arrival history: serving state may drop all of it.
  double history_requirement() const override { return 0.0; }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

  /// BP is stateless beyond its pool size; the snapshot record carries the
  /// size so the inspector can describe it and restore can cross-check it
  /// against the rebuilt spec.
  Status SerializeModel(persist::Writer* writer) const override;
  Status DeserializeModel(persist::Reader* reader) override;

  std::size_t pool_size() const { return pool_size_; }

 private:
  std::size_t pool_size_;
};

}  // namespace rs::baseline
