#include "rs/baselines/backup_pool.hpp"

#include <string>

#include "rs/persist/persist.hpp"

namespace rs::baseline {

namespace {
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

sim::ScalingAction BackupPool::Initialize(const sim::SimContext& ctx) {
  sim::ScalingAction action;
  action.creation_times.assign(pool_size_, ctx.now);
  return action;
}

sim::ScalingAction BackupPool::OnQueryArrival(const sim::SimContext& ctx,
                                              bool cold_start) {
  sim::ScalingAction action;
  // A pool instance was consumed: replenish. A cold start means the pool
  // was empty (B = 0 or transiently drained) — the reactively-created
  // instance already replaces the pool slot that never existed, so only
  // top up to the target size.
  const std::size_t outstanding = ctx.Outstanding();
  if (outstanding < pool_size_) {
    action.creation_times.assign(pool_size_ - outstanding, ctx.now);
  }
  (void)cold_start;
  return action;
}

Status BackupPool::SerializeModel(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagBackupPoolModel);
  writer->WriteU32(kModelVersion);
  writer->WriteU64(pool_size_);
  writer->EndSection();
  return Status::OK();
}

Status BackupPool::DeserializeModel(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagBackupPoolModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kModelVersion) {
    return Status::Invalid("BP model record version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t pool_size, reader->ReadU64());
  if (pool_size != pool_size_) {
    return Status::Invalid(
        "BP snapshot/spec mismatch: snapshot was taken with pool_size=" +
        std::to_string(pool_size) + " but the spec rebuilt pool_size=" +
        std::to_string(pool_size_));
  }
  return reader->ExitSection();
}

}  // namespace rs::baseline
