#include "rs/baselines/backup_pool.hpp"

namespace rs::baseline {

sim::ScalingAction BackupPool::Initialize(const sim::SimContext& ctx) {
  sim::ScalingAction action;
  action.creation_times.assign(pool_size_, ctx.now);
  return action;
}

sim::ScalingAction BackupPool::OnQueryArrival(const sim::SimContext& ctx,
                                              bool cold_start) {
  sim::ScalingAction action;
  // A pool instance was consumed: replenish. A cold start means the pool
  // was empty (B = 0 or transiently drained) — the reactively-created
  // instance already replaces the pool slot that never existed, so only
  // top up to the target size.
  const std::size_t outstanding = ctx.Outstanding();
  if (outstanding < pool_size_) {
    action.creation_times.assign(pool_size_ - outstanding, ctx.now);
  }
  (void)cold_start;
  return action;
}

}  // namespace rs::baseline
