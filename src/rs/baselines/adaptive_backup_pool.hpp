/// \file adaptive_backup_pool.hpp
/// \brief Adaptive Backup Pool (AdapBP) baseline: every `update_interval`
///        (paper: ten minutes) the pool size is reset to
///        round(recent-QPS-estimate × multiplier) (Section VII-A1).
#pragma once

#include <cstddef>

#include "rs/simulator/autoscaler.hpp"

namespace rs::baseline {

class AdaptiveBackupPool : public sim::Autoscaler {
 public:
  /// \param multiplier     the pre-fixed constant applied to the QPS estimate.
  /// \param update_interval pool-resize period in seconds (paper: 600).
  /// \param estimate_window QPS averaging window in seconds (paper: 600).
  AdaptiveBackupPool(double multiplier, double update_interval = 600.0,
                     double estimate_window = 600.0);

  const char* name() const override { return "AdapBP"; }
  double planning_interval() const override { return update_interval_; }
  /// AdapBP only counts arrivals inside its trailing QPS-estimate window.
  double history_requirement() const override { return estimate_window_; }

  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

  /// AdapBP's mutable model is the currently targeted pool size (the last
  /// OnPlanningTick resize); parameters ride along for the inspector.
  Status SerializeModel(persist::Writer* writer) const override;
  Status DeserializeModel(persist::Reader* reader) override;

  /// Pool size currently targeted (for tests).
  std::size_t current_target() const { return target_; }

 private:
  double multiplier_;
  double update_interval_;
  double estimate_window_;
  std::size_t target_ = 0;
};

}  // namespace rs::baseline
