// Cost-budget scenario: a team with a strict spend ceiling uses
// RobustScaler-cost (Eq. 6/7) and verifies the achieved mean idle time per
// instance tracks the budget knob — the accurate-cost-control property of
// the paper's Fig. 10(c).
//
// Build & run:  ./build/examples/example_cost_budget
#include <algorithm>
#include <cstdio>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

int main() {
  using namespace rs;

  // Steady 0.5-QPS service with exponential processing (mean 20 s).
  const double horizon = 36000.0;
  auto intensity = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, 0.5), horizon / 100.0);
  stats::Rng rng(21);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  const auto pending = stats::DurationDistribution::Deterministic(13.0);
  std::printf("steady trace: %zu queries over %.0f s\n", trace.size(), horizon);

  sim::EngineOptions engine;
  engine.pending = pending;

  std::printf("\n%10s %14s %10s %10s\n", "budget (s)", "achieved idle",
              "hit_rate", "rt_avg");
  // The ground-truth intensity doubles as a perfect "forecast": the
  // registry builds each swept policy from a string + parameter map.
  api::StrategyContext context;
  context.forecast = &intensity;
  context.pending = pending;
  for (double budget : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    auto policy = api::MakeStrategy({.name = "robust_cost",
                                     .params = {{"target", budget},
                                                {"planning_interval", 2.0},
                                                {"mc_samples", 400}}},
                                    context);
    if (!policy.ok()) {
      std::fprintf(stderr, "strategy failed: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    auto result = sim::Simulate(trace, policy->get(), engine);
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed\n");
      return 1;
    }
    auto metrics = *sim::ComputeMetrics(*result);
    // Isolate idle: lifecycle = idle + tau + s for served instances.
    double idle_plus_s = 0.0;
    std::size_t used = 0;
    for (const auto& inst : result->instances) {
      if (!inst.served_query) continue;
      ++used;
      idle_plus_s += std::max(0.0, inst.lifecycle_cost - 13.0);
    }
    const double mean_idle =
        used > 0 ? idle_plus_s / static_cast<double>(used) - 20.0 : 0.0;
    std::printf("%10.1f %14.2f %10.3f %10.2f\n", budget, mean_idle,
                metrics.hit_rate, metrics.rt_avg);
  }
  std::printf("\n'achieved idle' should track the budget column (Fig. 10(c) "
              "accuracy), while hit_rate rises with the budget.\n");
  return 0;
}
