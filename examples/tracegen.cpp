// tracegen: command-line generator for the synthetic benchmark traces.
//
// Writes the CRS-like / Google-like / Alibaba-like traces (or a custom
// constant-rate Poisson trace) as CSV so they can be inspected, plotted, or
// replayed from other tooling, and demonstrates the Trace CSV round trip.
//
// Usage:
//   example_tracegen <crs|google|alibaba|constant> <output.csv> [seed] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rs/stats/rng.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/synthetic.hpp"
#include "rs/workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <crs|google|alibaba|constant> <output.csv> "
                 "[seed] [scale]\n",
                 argv[0]);
    return 2;
  }
  const std::string kind = argv[1];
  const std::string path = argv[2];
  workload::SyntheticTraceOptions options;
  if (argc > 3) options.seed = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) options.scale = std::strtod(argv[4], nullptr);

  Result<workload::SyntheticTrace> synth = Status::OK();
  if (kind == "crs") {
    synth = workload::MakeCrsLikeTrace(options);
  } else if (kind == "google") {
    synth = workload::MakeGoogleLikeTrace(options);
  } else if (kind == "alibaba") {
    synth = workload::MakeAlibabaLikeTrace(options);
  } else if (kind == "constant") {
    stats::Rng rng(options.seed);
    auto intensity = workload::PiecewiseConstantIntensity::Make(
        std::vector<double>(100, 0.5 * options.scale), 864.0);
    if (!intensity.ok()) return 1;
    auto trace = workload::MakeTraceFromIntensity(
        &rng, *intensity, stats::DurationDistribution::Exponential(20.0));
    if (!trace.ok()) return 1;
    workload::SyntheticTrace out;
    out.trace = std::move(*trace);
    out.intensity = std::move(*intensity);
    out.name = "constant";
    synth = std::move(out);
  } else {
    std::fprintf(stderr, "unknown trace kind: %s\n", kind.c_str());
    return 2;
  }
  if (!synth.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 synth.status().ToString().c_str());
    return 1;
  }

  const Status saved = synth->trace.SaveCsv(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  // Round-trip check: a reloaded trace must match in size.
  auto reloaded = workload::Trace::LoadCsv(path, synth->trace.horizon());
  if (!reloaded.ok() || reloaded->size() != synth->trace.size()) {
    std::fprintf(stderr, "round-trip verification failed\n");
    return 1;
  }
  std::printf("%s: wrote %zu queries (horizon %.0f s, avg QPS %.4f) to %s\n",
              synth->name.c_str(), synth->trace.size(),
              synth->trace.horizon(), synth->trace.AverageQps(), path.c_str());
  return 0;
}
