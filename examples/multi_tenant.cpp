// Multi-tenant serving: one process, many per-service models.
//
// 1. Train three per-service Scalers (different workload phases and
//    scaling targets) and register them in a ScalerFleet with a 2-thread
//    planning pool.
// 2. Serve the merged arrival stream: Observe() routes each arrival to its
//    tenant, PlanAll() batches every tenant's planning across the pool and
//    returns actions in registration order.
// 3. Mid-run, retire one tenant and hot-swap another tenant's model —
//    neighbors are undisturbed.
//
// Build & run:  ./build/examples/example_multi_tenant
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

using namespace rs;

namespace {

struct Service {
  std::string name;
  const char* strategy;
  workload::Trace train;
  workload::Trace test;
};

Service MakeService(std::string name, const char* strategy, double phase0,
                    std::uint64_t seed) {
  const double period_s = 1800.0, dt = 30.0;
  const double horizon = 10.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.4 + 0.3 * std::sin(2.0 * M_PI * (phase + phase0)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  Service service{std::move(name), strategy, {}, {}};
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  service.train = std::move(train);
  service.test = std::move(test);
  return service;
}

api::Scaler BuildScaler(const Service& service) {
  auto spec = *api::ParseStrategySpec(service.strategy);
  auto scaler = api::ScalerBuilder()
                    .WithTrace(service.train)
                    .WithBinWidth(30.0)
                    .WithForecastHorizon(service.test.horizon())
                    .WithStrategy(spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(150)
                    .Build();
  if (!scaler.ok()) {
    std::fprintf(stderr, "training %s failed: %s\n", service.name.c_str(),
                 scaler.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(scaler).ValueOrDie();
}

void PrintFleet(const api::ScalerFleet& fleet) {
  const api::FleetSnapshot snap = fleet.Snapshot();
  std::printf("fleet: %zu tenants, %zu queries, %zu creations, "
              "%zu plan rounds | retained %zu/%zu arrivals\n",
              snap.tenants, snap.queries_observed, snap.creations_requested,
              snap.planning_rounds, snap.arrivals_retained,
              snap.queries_observed);
  for (const auto& [name, tenant] : snap.per_tenant) {
    std::printf("  %-10s %-28s now=%7.1fs queries=%5zu alive=%3zu "
                "cold=%3zu\n",
                name.c_str(), tenant.strategy.c_str(), tenant.now,
                tenant.queries_observed, tenant.instances_alive,
                tenant.cold_starts);
  }
}

}  // namespace

int main() {
  // --- 1. Three services, one process.
  std::vector<Service> services;
  services.push_back(
      MakeService("search", "robust_hp:target=0.9", 0.00, 11));
  services.push_back(
      MakeService("checkout", "robust_rt:target=2.0", 0.33, 12));
  services.push_back(
      MakeService("thumbs", "backup_pool:pool_size=2", 0.66, 13));

  api::ScalerFleet fleet(/*worker_threads=*/2);
  for (auto& service : services) {
    auto st = fleet.Register(service.name, BuildScaler(service));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("registered:");
  for (const auto& name : fleet.Tenants()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // --- 2. Serve the merged stream; batch planning every 2 s of trace time.
  std::vector<std::pair<double, std::size_t>> arrivals;
  for (std::size_t i = 0; i < services.size(); ++i) {
    for (const auto& q : services[i].test.queries()) {
      arrivals.emplace_back(q.arrival_time, i);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  const double horizon = services[0].test.horizon();
  const double half = horizon / 2.0;

  double next_plan = 2.0;
  std::size_t batch_creations = 0;
  bool swapped = false;
  for (const auto& [t, i] : arrivals) {
    while (next_plan <= t) {
      for (auto& plan : fleet.PlanAll(next_plan)) {
        if (plan.status.ok()) batch_creations += plan.action.creation_times.size();
      }
      next_plan += 2.0;
    }
    if (!swapped && t >= half) {
      // --- 3. Lifecycle, mid-run: drop one tenant, hot-swap a model.
      swapped = true;
      std::printf("at t=%.0fs, before lifecycle changes:\n", t);
      PrintFleet(fleet);
      (void)fleet.Retire("thumbs");
      (void)fleet.ReplaceModel("checkout", BuildScaler(services[1]));
      std::printf("\nretired \"thumbs\", replaced \"checkout\" model "
                  "(fresh serving state; \"search\" untouched):\n");
      PrintFleet(fleet);
      std::printf("\n");
    }
    if (fleet.Find(services[i].name) == nullptr) continue;  // Retired.
    auto outcome = fleet.Observe(services[i].name, t);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
  }
  for (auto& plan : fleet.PlanAll(horizon)) {
    if (plan.status.ok()) batch_creations += plan.action.creation_times.size();
  }

  std::printf("served to t=%.0fs (%zu creations via PlanAll batches):\n",
              horizon, batch_creations);
  PrintFleet(fleet);
  return 0;
}
