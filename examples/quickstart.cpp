// Quickstart: the full RobustScaler pipeline through the rs::api facade.
//
// 1. Generate a periodic scaling-per-query workload (an NHPP with a
//    2-hour cycle), split into training and test windows.
// 2. Build a Scaler: ScalerBuilder trains periodicity detection ->
//    regularized NHPP fit (ADMM) -> intensity forecast, then attaches the
//    RobustScaler-HP policy with a 90% hitting-probability target.
// 3. Replay the test window with it, next to a purely reactive baseline
//    selected from the strategy registry by name.
//
// Build & run:  ./build/examples/example_quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

int main() {
  using namespace rs;

  // --- 1. Workload: 12 cycles of a 2-hour pattern, ~0.4 QPS on average.
  const double period_s = 7200.0, dt = 60.0;
  const double horizon = 12.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.4 + 0.3 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(7);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  std::printf("workload: %zu training / %zu test queries\n", train.size(),
              test.size());

  // --- 2. Train-then-serve facade: one builder call chain.
  auto scaler = api::ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(dt)
                    .WithForecastHorizon(test.horizon())
                    .WithTarget(api::HitRate{0.9})
                    .WithPlanningInterval(1.0)
                    .Build();
  if (!scaler.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 scaler.status().ToString().c_str());
    return 1;
  }
  std::printf("detected period: %zu bins (%.1f min), ADMM iters: %zu\n",
              scaler->trained().period.period,
              static_cast<double>(scaler->trained().period.period) * dt / 60.0,
              scaler->trained().admm_info.iterations);

  // --- 3. Replay the test window: RobustScaler-HP vs pure reactive.
  auto rs_metrics = *scaler->Evaluate(test);
  auto reactive = api::MakeStrategy({.name = "backup_pool", .params = {}});
  auto reactive_metrics = *api::Evaluate(test, reactive->get());

  std::printf("\n%-18s %10s %10s %12s\n", "strategy", "hit_rate", "rt_avg",
              "total_cost");
  std::printf("%-18s %10.3f %10.1f %12.0f\n", "reactive (B=0)",
              reactive_metrics.hit_rate, reactive_metrics.rt_avg,
              reactive_metrics.total_cost);
  std::printf("%-18s %10.3f %10.1f %12.0f\n", scaler->strategy_name().c_str(),
              rs_metrics.hit_rate, rs_metrics.rt_avg, rs_metrics.total_cost);
  std::printf("\nRobustScaler reached %.0f%% hits (target 90%%) at %.2fx the "
              "reactive cost.\n",
              100.0 * rs_metrics.hit_rate,
              rs_metrics.total_cost / reactive_metrics.total_cost);
  return 0;
}
