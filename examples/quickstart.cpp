// Quickstart: the full RobustScaler pipeline in ~60 lines.
//
// 1. Generate a periodic scaling-per-query workload (an NHPP with a
//    2-hour cycle), split into training and test windows.
// 2. Train: periodicity detection -> regularized NHPP fit (ADMM) ->
//    intensity forecast.
// 3. Scale: replay the test window under RobustScaler-HP with a 90%
//    hitting-probability target, next to a purely reactive baseline.
//
// Build & run:  ./build/examples/example_quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "rs/baselines/backup_pool.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/synthetic.hpp"

int main() {
  using namespace rs;

  // --- 1. Workload: 12 cycles of a 2-hour pattern, ~0.4 QPS on average.
  const double period_s = 7200.0, dt = 60.0;
  const double horizon = 12.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.4 + 0.3 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(7);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  std::printf("workload: %zu training / %zu test queries\n", train.size(),
              test.size());

  // --- 2. Train the pipeline (modules 1-3 of the paper's framework).
  core::PipelineOptions options;
  options.dt = dt;
  options.forecast_horizon = test.horizon();
  auto trained = core::TrainRobustScaler(train, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("detected period: %zu bins (%.1f min), ADMM iters: %zu\n",
              trained->period.period,
              static_cast<double>(trained->period.period) * dt / 60.0,
              trained->admm_info.iterations);

  // --- 3. Replay the test window: RobustScaler-HP vs pure reactive.
  const auto pending = stats::DurationDistribution::Deterministic(13.0);
  sim::EngineOptions engine;
  engine.pending = pending;

  core::SequentialScalerOptions scaler;
  scaler.variant = core::ScalerVariant::kHittingProbability;
  scaler.alpha = 0.1;  // Target hitting probability: 0.9.
  scaler.planning_interval = 1.0;
  auto policy = core::MakeRobustScalerPolicy(*trained, pending, scaler);
  auto rs_metrics =
      *sim::ComputeMetrics(*sim::Simulate(test, policy.get(), engine));

  baseline::BackupPool reactive(0);
  auto reactive_metrics =
      *sim::ComputeMetrics(*sim::Simulate(test, &reactive, engine));

  std::printf("\n%-18s %10s %10s %12s\n", "strategy", "hit_rate", "rt_avg",
              "total_cost");
  std::printf("%-18s %10.3f %10.1f %12.0f\n", "reactive (B=0)",
              reactive_metrics.hit_rate, reactive_metrics.rt_avg,
              reactive_metrics.total_cost);
  std::printf("%-18s %10.3f %10.1f %12.0f\n", "RobustScaler-HP",
              rs_metrics.hit_rate, rs_metrics.rt_avg, rs_metrics.total_cost);
  std::printf("\nRobustScaler reached %.0f%% hits (target 90%%) at %.2fx the "
              "reactive cost.\n",
              100.0 * rs_metrics.hit_rate,
              rs_metrics.total_cost / reactive_metrics.total_cost);
  return 0;
}
