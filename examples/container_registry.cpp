// Container-registry scenario (the paper's CRS trace, Section VII-A2):
// a noisy, low-traffic workload with weekly/daily structure where every
// image-build query needs its own instance. Compares all five autoscalers
// from the paper at one operating point each.
//
// Every strategy is selected purely from a string + parameter map via the
// rs::api::StrategyRegistry — this file has no strategy-specific includes,
// which is exactly how a config-driven deployment would pick strategies.
//
// Build & run:  ./build/examples/example_container_registry
#include <cstdio>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"

namespace {

void PrintRow(const std::string& name, const rs::sim::Metrics& m,
              double ref_cost) {
  std::printf("%-38s %9.3f %9.1f %9.1f %11.2f\n", name.c_str(), m.hit_rate,
              m.rt_avg, m.rt_p95, m.total_cost / ref_cost);
}

}  // namespace

int main() {
  using namespace rs;

  // CRS-like trace: 4 weeks, first 3 weeks train / last week test — the
  // paper's split. (Synthetic stand-in; see DESIGN.md substitutions.)
  auto synth = workload::MakeCrsLikeTrace();
  if (!synth.ok()) {
    std::fprintf(stderr, "trace generation failed\n");
    return 1;
  }
  const double week = 7.0 * 86400.0;
  auto [train, test] = synth->trace.SplitAt(3.0 * week);
  std::printf("CRS-like trace: %zu train / %zu test queries (avg QPS %.4f)\n",
              train.size(), test.size(), synth->trace.AverageQps());

  // Train once through the facade's shared-fit path; every strategy in the
  // lineup reuses this one forecast.
  core::PipelineOptions options;
  options.dt = 600.0;                        // 10-minute bins.
  options.periodicity.aggregate_factor = 6;  // Detect on hourly bins.
  options.forecast_horizon = test.horizon();
  auto trained = api::TrainPipeline(train, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("detected period: %.2f days\n",
              static_cast<double>(trained->period.period) * options.dt /
                  86400.0);
  std::printf("registered strategies:");
  for (const auto& name : api::StrategyRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  sim::EngineOptions engine;
  engine.pending = synth->pending;

  api::StrategyContext context;
  context.forecast = &trained->forecast;
  context.pending = synth->pending;

  auto run = [&](const api::StrategySpec& spec) {
    auto strategy = api::MakeStrategy(spec, context);
    if (!strategy.ok()) {
      std::fprintf(stderr, "strategy '%s' failed: %s\n", spec.name.c_str(),
                   strategy.status().ToString().c_str());
      std::exit(1);
    }
    auto metrics = api::Evaluate(test, strategy->get(), engine);
    if (!metrics.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   metrics.status().ToString().c_str());
      std::exit(1);
    }
    return *metrics;
  };

  // Reference cost: pure reactive BP(B=0) (paper metric "relative cost").
  const api::StrategySpec reactive{"backup_pool", {{"pool_size", 0}}};
  const auto reactive_metrics = run(reactive);
  const double ref_cost = reactive_metrics.total_cost;

  // The five paper strategies, each one line of config.
  const std::vector<api::StrategySpec> lineup = {
      {"backup_pool", {{"pool_size", 2}}},
      {"adaptive_backup_pool", {{"multiplier", 400.0}}},
      {"robust_hp", {{"target", 0.9}, {"planning_interval", 5.0}}},
      {"robust_rt", {{"target", 2.0}, {"planning_interval", 5.0}}},
      {"robust_cost", {{"target", 60.0}, {"planning_interval", 5.0}}},
  };

  std::printf("\n%-38s %9s %9s %9s %11s\n", "strategy", "hit_rate", "rt_avg",
              "rt_p95", "rel_cost");
  PrintRow(api::FormatStrategySpec(reactive), reactive_metrics, ref_cost);
  for (const auto& spec : lineup) {
    PrintRow(api::FormatStrategySpec(spec), run(spec), ref_cost);
  }

  std::printf("\nAll robust_* rows should sit above the pool baselines in hit\n"
              "rate at comparable relative cost (the paper's Fig. 4 pattern).\n");
  return 0;
}
