// Container-registry scenario (the paper's CRS trace, Section VII-A2):
// a noisy, low-traffic workload with weekly/daily structure where every
// image-build query needs its own instance. Compares all five autoscalers
// from the paper at one operating point each.
//
// Build & run:  ./build/examples/example_container_registry
#include <cstdio>
#include <memory>
#include <vector>

#include "rs/baselines/adaptive_backup_pool.hpp"
#include "rs/baselines/backup_pool.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/workload/synthetic.hpp"

namespace {

void PrintRow(const char* name, const rs::sim::Metrics& m, double ref_cost) {
  std::printf("%-20s %9.3f %9.1f %9.1f %11.2f\n", name, m.hit_rate, m.rt_avg,
              m.rt_p95, m.total_cost / ref_cost);
}

}  // namespace

int main() {
  using namespace rs;

  // CRS-like trace: 4 weeks, first 3 weeks train / last week test — the
  // paper's split. (Synthetic stand-in; see DESIGN.md substitutions.)
  auto synth = workload::MakeCrsLikeTrace();
  if (!synth.ok()) {
    std::fprintf(stderr, "trace generation failed\n");
    return 1;
  }
  const double week = 7.0 * 86400.0;
  auto [train, test] = synth->trace.SplitAt(3.0 * week);
  std::printf("CRS-like trace: %zu train / %zu test queries (avg QPS %.4f)\n",
              train.size(), test.size(), synth->trace.AverageQps());

  // Train once; all RobustScaler variants share the forecast.
  core::PipelineOptions options;
  options.dt = 600.0;                      // 10-minute bins.
  options.periodicity.aggregate_factor = 6;  // Detect on hourly bins.
  options.forecast_horizon = test.horizon();
  auto trained = core::TrainRobustScaler(train, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("detected period: %.2f days\n",
              static_cast<double>(trained->period.period) * options.dt / 86400.0);

  const auto pending = synth->pending;
  sim::EngineOptions engine;
  engine.pending = pending;

  // Reference cost: pure reactive (BP with B = 0).
  baseline::BackupPool reactive(0);
  auto reactive_metrics =
      *sim::ComputeMetrics(*sim::Simulate(test, &reactive, engine));
  const double ref_cost = reactive_metrics.total_cost;

  std::printf("\n%-20s %9s %9s %9s %11s\n", "strategy", "hit_rate", "rt_avg",
              "rt_p95", "rel_cost");
  PrintRow("BP (B=0, reactive)", reactive_metrics, ref_cost);

  baseline::BackupPool bp2(2);
  PrintRow("BP (B=2)", *sim::ComputeMetrics(*sim::Simulate(test, &bp2, engine)),
           ref_cost);

  baseline::AdaptiveBackupPool adap(400.0);
  PrintRow("AdapBP (c=400)",
           *sim::ComputeMetrics(*sim::Simulate(test, &adap, engine)), ref_cost);

  core::SequentialScalerOptions hp;
  hp.variant = core::ScalerVariant::kHittingProbability;
  hp.alpha = 0.1;
  hp.planning_interval = 5.0;
  auto hp_policy = core::MakeRobustScalerPolicy(*trained, pending, hp);
  PrintRow("RobustScaler-HP",
           *sim::ComputeMetrics(*sim::Simulate(test, hp_policy.get(), engine)),
           ref_cost);

  core::SequentialScalerOptions rt;
  rt.variant = core::ScalerVariant::kResponseTime;
  rt.rt_excess = 2.0;  // Allowed mean wait beyond processing: 2 s.
  rt.planning_interval = 5.0;
  auto rt_policy = core::MakeRobustScalerPolicy(*trained, pending, rt);
  PrintRow("RobustScaler-RT",
           *sim::ComputeMetrics(*sim::Simulate(test, rt_policy.get(), engine)),
           ref_cost);

  core::SequentialScalerOptions cost;
  cost.variant = core::ScalerVariant::kCost;
  cost.idle_budget = 60.0;  // Allowed mean idle seconds per instance.
  cost.planning_interval = 5.0;
  auto cost_policy = core::MakeRobustScalerPolicy(*trained, pending, cost);
  PrintRow("RobustScaler-cost",
           *sim::ComputeMetrics(*sim::Simulate(test, cost_policy.get(), engine)),
           ref_cost);

  std::printf("\nAll RobustScaler rows should sit above BP/AdapBP in hit rate\n"
              "at comparable relative cost (the paper's Fig. 4 pattern).\n");
  return 0;
}
