// FaaS burst scenario (the paper's Alibaba-trace experiment, Section
// VII-B3): a cluster workload with recurrent submission waves plus one
// *unexpected* burst on day 4 of training. Shows that the NHPP fit with
// robust periodicity regularization shrugs the anomaly off: QoS before vs
// after removing the burst is nearly identical.
//
// Build & run:  ./build/examples/example_faas_burst
#include <cstdio>
#include <cstdlib>

#include "rs/api/api.hpp"
#include "rs/workload/perturbation.hpp"

namespace {

rs::sim::Metrics RunHp(const rs::workload::Trace& train,
                       const rs::workload::Trace& test,
                       const rs::stats::DurationDistribution& pending) {
  using namespace rs;
  auto scaler = api::ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(60.0)
                    .WithAggregateFactor(10)
                    .WithForecastHorizon(test.horizon())
                    .WithTarget(api::HitRate{0.9})
                    .WithPlanningInterval(5.0)
                    .WithMcSamples(200)
                    .WithPending(pending)
                    .Build();
  if (!scaler.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 scaler.status().ToString().c_str());
    std::exit(1);
  }
  return *scaler->Evaluate(test);
}

}  // namespace

int main() {
  using namespace rs;

  workload::SyntheticTraceOptions topts;
  topts.scale = 0.05;  // ≈ 25k queries: quick to replay.
  auto synth = workload::MakeAlibabaLikeTrace(topts);
  if (!synth.ok()) {
    std::fprintf(stderr, "trace generation failed\n");
    return 1;
  }
  // First 4 days train (burst lands mid-day-4), last day tests.
  auto [train, test] = synth->trace.SplitAt(4.0 * 86400.0);
  std::printf("Alibaba-like trace: %zu train / %zu test queries\n",
              train.size(), test.size());

  const auto burst = workload::AlibabaBurstWindow();
  auto cleaned = workload::ThinWindow(train, burst.begin, burst.end,
                                      /*keep_prob=*/0.08);
  if (!cleaned.ok()) return 1;
  std::printf("burst window [%.0f, %.0f): %zu queries with burst, %zu after "
              "removal\n",
              burst.begin, burst.end,
              train.Slice(burst.begin, burst.end).size(),
              cleaned->Slice(burst.begin, burst.end).size());

  const auto with_burst = RunHp(train, test, synth->pending);
  const auto without_burst = RunHp(*cleaned, test, synth->pending);

  std::printf("\n%-26s %9s %9s %12s\n", "training data", "hit_rate", "rt_avg",
              "total_cost");
  std::printf("%-26s %9.3f %9.1f %12.0f\n", "with day-4 burst",
              with_burst.hit_rate, with_burst.rt_avg, with_burst.total_cost);
  std::printf("%-26s %9.3f %9.1f %12.0f\n", "burst removed",
              without_burst.hit_rate, without_burst.rt_avg,
              without_burst.total_cost);
  std::printf("\nNearly identical rows = the anomaly did not poison the "
              "model (the paper's Fig. 9 claim).\n");
  return 0;
}
