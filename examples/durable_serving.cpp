// Durable serving: crash-recovery with rs::persist snapshots.
//
// A Scaler serves a scripted stream of arrivals and planning polls while
// periodically saving its state (SaveState) plus a tiny cursor sidecar
// recording how many script steps the snapshot covers and the FNV-1a hash
// of every action emitted up to it. Killing the process mid-stream and
// restoring from the last snapshot then continues the action sequence
// byte-identically — the final hash matches an uninterrupted run.
//
// Subcommands (the CI smoke test drives the first three):
//   crash <dir>     serve, snapshotting every K steps; _Exit(3) mid-stream.
//   resume <dir>    restore the last snapshot, finish, print final_hash=...
//   control         uninterrupted run, print final_hash=...
//   parity          (default) in-process snapshot/restore halfway through,
//                   compare the action stream against an uninterrupted run.
//
// Build & run:  ./build/examples/example_durable_serving
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rs/api/scaler.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/synthetic.hpp"
#include "rs/workload/trace.hpp"

namespace {

using namespace rs;

constexpr double kPlanEvery = 2.0;  // Seconds between Plan() polls.
constexpr int kSnapshotEverykSteps = 40;
constexpr int kCrashAtStep = 100;

// One scripted serving step: an arrival to Observe or a Plan poll.
struct Step {
  bool is_plan = false;
  double time = 0.0;
};

// FNV-1a over the bytes of everything the scaler hands back to the caller:
// observe outcomes, creation times, deletion counts.
struct ActionHash {
  std::uint64_t h = 14695981039346656037ULL;
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void Double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
};

workload::Trace MakeWorkload(double* split_at) {
  const double period_s = 1800.0, dt = 30.0;
  const double horizon = 8.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.5 + 0.4 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(20220414);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(25.0));
  *split_at = horizon - 2.0 * period_s;
  return trace;
}

// Arrivals merged with Plan polls every kPlanEvery seconds (tick first on a
// tie, matching the engine's event order), ending with one final poll.
std::vector<Step> MakeScript(const workload::Trace& test) {
  std::vector<Step> script;
  double next_plan = kPlanEvery;
  for (const double arrival : test.ArrivalTimes()) {
    while (next_plan <= arrival) {
      script.push_back({true, next_plan});
      next_plan += kPlanEvery;
    }
    script.push_back({false, arrival});
  }
  script.push_back({true, next_plan});
  return script;
}

Result<api::Scaler> BuildScaler(const workload::Trace& train,
                                double forecast_horizon) {
  return api::ScalerBuilder()
      .WithTrace(train)
      .WithBinWidth(30.0)
      .WithForecastHorizon(forecast_horizon)
      .WithTarget(api::HitRate{0.9})
      .WithPlanningInterval(1.0)
      .WithMcSamples(60)
      .WithSeed(11)
      .Build();
}

// Runs script steps [from, to), folding every outcome into `hash`. When
// `actions` is non-null, the drained creation times / deletions are also
// appended there (the parity subcommand compares them element-wise).
Status RunSteps(api::Scaler* scaler, const std::vector<Step>& script,
                std::size_t from, std::size_t to, ActionHash* hash,
                std::vector<double>* actions) {
  for (std::size_t i = from; i < to; ++i) {
    const Step& step = script[i];
    if (step.is_plan) {
      RS_ASSIGN_OR_RETURN(const sim::ScalingAction action,
                          scaler->Plan(step.time));
      hash->U64(action.creation_times.size());
      for (const double t : action.creation_times) {
        hash->Double(t);
        if (actions != nullptr) actions->push_back(t);
      }
      hash->U64(action.deletions);
      if (actions != nullptr) {
        actions->push_back(-static_cast<double>(action.deletions));
      }
    } else {
      RS_ASSIGN_OR_RETURN(const api::Scaler::ObserveOutcome outcome,
                          scaler->Observe(step.time));
      hash->U64((outcome.cold_start ? 1u : 0u) |
                (outcome.cancel_earliest_scheduled ? 2u : 0u));
    }
  }
  return Status::OK();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "durable_serving: %s\n", status.ToString().c_str());
  return 1;
}

// crash: serve with periodic snapshots, then die abruptly mid-stream.
int RunCrash(const std::string& dir) {
  double split_at = 0.0;
  const auto trace = MakeWorkload(&split_at);
  auto [train, test] = trace.SplitAt(split_at);
  auto scaler = BuildScaler(train, test.horizon());
  if (!scaler.ok()) return Fail(scaler.status());
  const auto script = MakeScript(test);
  ActionHash hash;
  for (int i = 0; i < kCrashAtStep && i < static_cast<int>(script.size());
       ++i) {
    if (i > 0 && i % kSnapshotEverykSteps == 0) {
      std::ofstream snap(dir + "/scaler.rsnp", std::ios::binary);
      if (Status st = scaler->SaveState(snap); !st.ok()) return Fail(st);
      std::ofstream cursor(dir + "/cursor.txt");
      cursor << i << ' ' << hash.h << '\n';
    }
    if (Status st = RunSteps(&scaler.ValueOrDie(), script, i, i + 1, &hash,
                             nullptr);
        !st.ok()) {
      return Fail(st);
    }
  }
  std::fprintf(stderr, "crashing at step %d (last snapshot covers step %d)\n",
               kCrashAtStep,
               (kCrashAtStep / kSnapshotEverykSteps) * kSnapshotEverykSteps);
  std::_Exit(3);  // No destructors, no flush: a real crash.
}

// resume: restore the last snapshot and finish the stream.
int RunResume(const std::string& dir) {
  double split_at = 0.0;
  const auto trace = MakeWorkload(&split_at);
  auto [train, test] = trace.SplitAt(split_at);
  const auto script = MakeScript(test);

  std::ifstream cursor(dir + "/cursor.txt");
  std::size_t steps_done = 0;
  ActionHash hash;
  if (!(cursor >> steps_done >> hash.h)) {
    std::fprintf(stderr, "durable_serving: cannot read %s/cursor.txt\n",
                 dir.c_str());
    return 1;
  }
  std::ifstream snap(dir + "/scaler.rsnp", std::ios::binary);
  auto scaler = api::ScalerBuilder::RestoreState(snap);
  if (!scaler.ok()) return Fail(scaler.status());
  if (Status st = RunSteps(&scaler.ValueOrDie(), script, steps_done,
                           script.size(), &hash, nullptr);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("final_hash=%llu\n", static_cast<unsigned long long>(hash.h));
  return 0;
}

// control: the uninterrupted run the recovery must match.
int RunControl() {
  double split_at = 0.0;
  const auto trace = MakeWorkload(&split_at);
  auto [train, test] = trace.SplitAt(split_at);
  auto scaler = BuildScaler(train, test.horizon());
  if (!scaler.ok()) return Fail(scaler.status());
  const auto script = MakeScript(test);
  ActionHash hash;
  if (Status st = RunSteps(&scaler.ValueOrDie(), script, 0, script.size(),
                           &hash, nullptr);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("final_hash=%llu\n", static_cast<unsigned long long>(hash.h));
  return 0;
}

// parity: self-contained snapshot/restore check, no files, no _Exit.
int RunParity() {
  double split_at = 0.0;
  const auto trace = MakeWorkload(&split_at);
  auto [train, test] = trace.SplitAt(split_at);
  const auto script = MakeScript(test);
  const std::size_t cut = script.size() / 2;

  auto control = BuildScaler(train, test.horizon());
  if (!control.ok()) return Fail(control.status());
  ActionHash control_hash;
  std::vector<double> control_actions;
  if (Status st = RunSteps(&control.ValueOrDie(), script, 0, script.size(),
                           &control_hash, &control_actions);
      !st.ok()) {
    return Fail(st);
  }

  auto interrupted = BuildScaler(train, test.horizon());
  if (!interrupted.ok()) return Fail(interrupted.status());
  ActionHash resumed_hash;
  std::vector<double> resumed_actions;
  if (Status st = RunSteps(&interrupted.ValueOrDie(), script, 0, cut,
                           &resumed_hash, &resumed_actions);
      !st.ok()) {
    return Fail(st);
  }
  std::stringstream snapshot;
  if (Status st = interrupted->SaveState(snapshot); !st.ok()) return Fail(st);
  std::printf("snapshot at step %zu/%zu: %zu bytes\n", cut, script.size(),
              static_cast<std::size_t>(snapshot.str().size()));
  auto restored = api::ScalerBuilder::RestoreState(snapshot);
  if (!restored.ok()) return Fail(restored.status());
  if (Status st = RunSteps(&restored.ValueOrDie(), script, cut, script.size(),
                           &resumed_hash, &resumed_actions);
      !st.ok()) {
    return Fail(st);
  }

  if (control_actions != resumed_actions ||
      control_hash.h != resumed_hash.h) {
    std::fprintf(stderr,
                 "PARITY FAILURE: restored run diverged from control "
                 "(%zu vs %zu actions)\n",
                 resumed_actions.size(), control_actions.size());
    return 1;
  }
  std::printf(
      "parity OK: %zu action values identical across the snapshot cut "
      "(hash %llu)\n",
      control_actions.size(),
      static_cast<unsigned long long>(control_hash.h));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "parity";
  if (mode == "crash" && argc > 2) return RunCrash(argv[2]);
  if (mode == "resume" && argc > 2) return RunResume(argv[2]);
  if (mode == "control") return RunControl();
  if (mode == "parity") return RunParity();
  std::fprintf(stderr,
               "usage: example_durable_serving [crash <dir> | resume <dir> | "
               "control | parity]\n");
  return 2;
}
