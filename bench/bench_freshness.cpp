// Model-freshness loop under scripted regime shifts: drift detection →
// warm-start background retrain → tear-free hot swap (ScalerFleet::
// EnableFreshness).
//
// Builds a fleet of T tenants on stationary sinusoidal training windows,
// then serves a test window where half the tenants change regime at
// mid-serve (even shifted tenants jump to 4x the traffic level, odd ones
// switch to a 3x shorter period). The freshness loop must catch every
// shifted tenant and swap a retrained model in at a plan boundary while
// the unshifted tenants stay silent — the bench aborts if either side
// fails, so the reported numbers are always from a run where the loop
// actually worked.
//
// Reported per --retrain-workers setting:
//   detection_rate            shifted tenants whose detector latched
//   false_positives           unshifted tenants that latched (must be 0)
//   staleness_mean/max_s      serving time from the regime shift to the
//                             first swapped-in retrained model
//   swap_latency_mean_s       drift latch → swap boundary
//   plans_per_s               tenant-plans per wall second (batch count ×
//                             tenants / serve wall time)
//   throughput_vs_no_freshness  plans_per_s relative to a freshness-off
//                             control run on the same machine (ratio, so
//                             the perf gate tracks it machine-independently)
//   max_plan_batch_ms         worst PlanAll wall time (swap boundaries
//                             included — tear-free must not mean slow)
//
// Drift detection runs on the caller thread, so detection times are
// byte-identical across --retrain-workers settings (checked). Swap timing
// is deterministic only for --retrain-workers=0 (inline retrains); with a
// background pool the fit lands whenever the pool gets to it.
//
// Usage:
//   bench_freshness [--tenants=8] [--retrain-workers=0,1]
//                   [--fleet-threads=1] [--cycles=2] [--qps=1] [--mc=60]
//                   [--min-retrain-interval=120]
//                   [--strategy=robust_hp:target=0.9]
//                   [--json=BENCH_freshness.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"

namespace {

using namespace rs;

constexpr double kPeriodS = 600.0;   ///< Workload cycle before the shift.
constexpr double kDt = 30.0;         ///< Model bin width.
constexpr double kPlanEvery = 2.0;   ///< Serving plan cadence (seconds).
constexpr double kTrainCycles = 6.0;

struct Options {
  std::size_t tenants = 8;
  std::vector<std::size_t> retrain_workers = {0, 1};
  std::size_t fleet_threads = 1;
  double cycles = 2.0;  ///< Serving window, in kPeriodS workload cycles.
  double qps = 1.0;
  std::size_t mc_samples = 60;
  double min_retrain_interval = 120.0;
  std::string strategy = "robust_hp:target=0.9";
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--tenants=", 0) == 0) {
      options.tenants = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--retrain-workers=", 0) == 0) {
      options.retrain_workers = bench::ParseSizeList(value());
    } else if (arg.rfind("--fleet-threads=", 0) == 0) {
      options.fleet_threads = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--cycles=", 0) == 0) {
      options.cycles = std::stod(value());
    } else if (arg.rfind("--qps=", 0) == 0) {
      options.qps = std::stod(value());
    } else if (arg.rfind("--mc=", 0) == 0) {
      options.mc_samples = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--min-retrain-interval=", 0) == 0) {
      options.min_retrain_interval = std::stod(value());
    } else if (arg.rfind("--strategy=", 0) == 0) {
      options.strategy = value();
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(options.tenants > 0);
  RS_CHECK(!options.retrain_workers.empty());
  RS_CHECK(options.cycles > 0.0);
  RS_CHECK(options.qps > 0.0);
  return options;
}

double SineRate(double t, double qps, double period, double phase0) {
  const double phase = std::fmod(t, period) / period;
  return qps * (1.0 + 0.6 * std::sin(2.0 * M_PI * (phase + phase0)));
}

workload::Trace MakeTrace(const std::vector<double>& rates,
                          std::uint64_t seed) {
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  return trace;
}

struct TenantWorkload {
  workload::Trace train;  ///< Stationary, kTrainCycles cycles.
  workload::Trace test;   ///< Serving window; may shift at t_shift.
  bool shifted = false;
};

TenantWorkload MakeTenantWorkload(std::size_t tenant, const Options& options,
                                  double serve_horizon, double t_shift) {
  const double phase0 = static_cast<double>(tenant) / 7.3;
  TenantWorkload w;
  // Half the fleet shifts; alternating so shifted/unshifted interleave in
  // registration order.
  w.shifted = (tenant % 2) == 0;
  std::vector<double> train_rates;
  for (double t = 0.5 * kDt; t < kTrainCycles * kPeriodS; t += kDt) {
    train_rates.push_back(SineRate(t, options.qps, kPeriodS, phase0));
  }
  w.train = MakeTrace(train_rates, 1000 + tenant);
  std::vector<double> test_rates;
  for (double t = 0.5 * kDt; t < serve_horizon; t += kDt) {
    if (!w.shifted || t < t_shift) {
      test_rates.push_back(SineRate(t, options.qps, kPeriodS, phase0));
    } else if ((tenant / 2) % 2 == 0) {
      // Level regime shift: 4x the traffic, same shape.
      test_rates.push_back(SineRate(t, 4.0 * options.qps, kPeriodS, phase0));
    } else {
      // Periodicity break: same mean level, 3x shorter cycle.
      test_rates.push_back(SineRate(t, options.qps, kPeriodS / 3.0, phase0));
    }
  }
  w.test = MakeTrace(test_rates, 5000 + tenant);
  return w;
}

struct Event {
  double t;
  std::size_t tenant;
};

struct RunResult {
  bool freshness = false;
  std::size_t retrain_workers = 0;
  double serve_s = 0.0;
  std::size_t plan_batches = 0;
  double max_plan_batch_s = 0.0;
  std::vector<double> drift_time;  ///< Per tenant; <0 = never latched.
  std::vector<ts::DriftKind> drift_kind;  ///< First latched kind per tenant.
  std::vector<double> swap_time;   ///< Per tenant; <0 = never swapped.
  std::size_t retrains_completed = 0;
  std::size_t retrain_failures = 0;
  double plans_per_s = 0.0;
};

api::ScalerFleet BuildFleet(const Options& options,
                            const std::vector<TenantWorkload>& workloads,
                            double serve_horizon) {
  auto spec = api::ParseStrategySpec(options.strategy);
  RS_CHECK(spec.ok()) << spec.status().ToString();
  api::ScalerFleet fleet(options.fleet_threads);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    auto scaler = api::ScalerBuilder()
                      .WithTrace(workloads[i].train)
                      .WithBinWidth(kDt)
                      .WithForecastHorizon(serve_horizon)
                      .WithStrategy(*spec)
                      .WithPlanningInterval(kPlanEvery)
                      .WithMcSamples(options.mc_samples)
                      .Build();
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(fleet.Register("tenant-" + std::to_string(i),
                            std::move(scaler).ValueOrDie())
                 .ok());
  }
  return fleet;
}

RunResult RunOnce(const Options& options,
                  const std::vector<TenantWorkload>& workloads,
                  const std::vector<Event>& events, double serve_horizon,
                  bool freshness, std::size_t retrain_workers) {
  RunResult run;
  run.freshness = freshness;
  run.retrain_workers = retrain_workers;
  run.drift_time.assign(workloads.size(), -1.0);
  run.drift_kind.assign(workloads.size(), ts::DriftKind::kNone);
  run.swap_time.assign(workloads.size(), -1.0);

  api::ScalerFleet fleet = BuildFleet(options, workloads, serve_horizon);
  if (freshness) {
    api::FreshnessPolicy policy;
    policy.pipeline.dt = kDt;
    policy.pipeline.forecast_horizon = serve_horizon;
    policy.min_retrain_interval = options.min_retrain_interval;
    policy.retrain_workers = retrain_workers;
    RS_CHECK(fleet.EnableFreshness(policy).ok());
  }

  std::vector<std::string> names;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    names.push_back("tenant-" + std::to_string(i));
  }
  const auto poll_freshness = [&] {
    if (!freshness) return;
    for (std::size_t i = 0; i < names.size(); ++i) {
      auto status = fleet.Freshness(names[i]);
      RS_CHECK(status.ok()) << status.status().ToString();
      if (run.drift_time[i] < 0.0 && status->drift != ts::DriftKind::kNone) {
        run.drift_time[i] = status->drift_time;
        run.drift_kind[i] = status->drift;
      }
      if (run.swap_time[i] < 0.0 && status->swaps_applied > 0) {
        run.swap_time[i] = status->last_swap_time;
      }
    }
  };

  Stopwatch serve_watch;
  Stopwatch batch_watch;
  double next_plan = kPlanEvery;
  const auto plan_batch = [&](double t) {
    batch_watch.Reset();
    for (const auto& plan : fleet.PlanAll(t)) {
      RS_CHECK(plan.status.ok())
          << plan.tenant << ": " << plan.status.ToString();
    }
    run.max_plan_batch_s =
        std::max(run.max_plan_batch_s, batch_watch.ElapsedSeconds());
    ++run.plan_batches;
    poll_freshness();
  };
  for (const auto& event : events) {
    while (next_plan <= event.t) {
      plan_batch(next_plan);
      next_plan += kPlanEvery;
    }
    auto outcome = fleet.Observe(names[event.tenant], event.t);
    RS_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  // Keep planning past the last arrival so in-flight background retrains
  // still reach a swap boundary before the run ends.
  while (next_plan <= serve_horizon) {
    plan_batch(next_plan);
    next_plan += kPlanEvery;
  }
  run.serve_s = serve_watch.ElapsedSeconds();
  run.plans_per_s = static_cast<double>(run.plan_batches * workloads.size()) /
                    run.serve_s;

  // The bench compresses ~20 simulated minutes into well under a second of
  // wall time, so a background fit can still be in flight when the arrival
  // stream ends. Drain: keep offering plan boundaries at the final serving
  // time (not counted in the throughput numbers above) until every
  // in-flight retrain has swapped or a wall-time cap expires.
  if (freshness) {
    Stopwatch drain_watch;
    while (drain_watch.ElapsedSeconds() < 10.0) {
      bool inflight = false;
      for (const auto& name : names) {
        auto status = fleet.Freshness(name);
        RS_CHECK(status.ok()) << status.status().ToString();
        if (status->retrain_inflight) inflight = true;
      }
      if (!inflight) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      for (const auto& plan : fleet.PlanAll(serve_horizon)) {
        RS_CHECK(plan.status.ok())
            << plan.tenant << ": " << plan.status.ToString();
      }
      poll_freshness();
    }
  }

  if (freshness) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      auto status = fleet.Freshness(names[i]);
      RS_CHECK(status.ok()) << status.status().ToString();
      run.retrains_completed += status->retrains_completed;
      run.retrain_failures += status->retrain_failures;
    }
  }
  return run;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

struct RowMetrics {
  std::size_t shifted = 0;
  std::size_t drifted_shifted = 0;
  std::size_t swapped_shifted = 0;
  std::size_t false_positives = 0;
  double detection_rate = 0.0;
  double staleness_mean_s = 0.0;
  double staleness_max_s = 0.0;
  double swap_latency_mean_s = 0.0;
};

RowMetrics Summarize(const std::vector<TenantWorkload>& workloads,
                     const RunResult& run, double t_shift) {
  RowMetrics m;
  std::vector<double> staleness;
  std::vector<double> latency;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (workloads[i].shifted) {
      ++m.shifted;
      if (run.drift_time[i] >= 0.0) ++m.drifted_shifted;
      if (run.swap_time[i] >= 0.0) {
        ++m.swapped_shifted;
        staleness.push_back(run.swap_time[i] - t_shift);
        if (run.drift_time[i] >= 0.0) {
          latency.push_back(run.swap_time[i] - run.drift_time[i]);
        }
      }
    } else if (run.drift_time[i] >= 0.0) {
      ++m.false_positives;
    }
  }
  m.detection_rate = m.shifted == 0
                         ? 1.0
                         : static_cast<double>(m.drifted_shifted) /
                               static_cast<double>(m.shifted);
  m.staleness_mean_s = Mean(staleness);
  m.staleness_max_s =
      staleness.empty() ? 0.0
                        : *std::max_element(staleness.begin(), staleness.end());
  m.swap_latency_mean_s = Mean(latency);
  return m;
}

void WriteJson(const Options& options, double serve_horizon, double t_shift,
               const std::vector<std::pair<RunResult, RowMetrics>>& rows,
               double control_plans_per_s) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"freshness\",\n"
      << "  \"strategy\": \"" << options.strategy << "\",\n"
      << "  \"tenants\": " << options.tenants << ",\n"
      << "  \"serve_horizon_s\": " << serve_horizon << ",\n"
      << "  \"shift_time_s\": " << t_shift << ",\n"
      << "  \"mc_samples\": " << options.mc_samples << ",\n"
      << "  \"min_retrain_interval_s\": " << options.min_retrain_interval
      << ",\n"
      << "  \"control_plans_per_s\": " << control_plans_per_s << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& run = rows[i].first;
    const RowMetrics& m = rows[i].second;
    out << "    {\"retrain_workers\": " << run.retrain_workers
        << ", \"shifted\": " << m.shifted
        << ", \"drifted_shifted\": " << m.drifted_shifted
        << ", \"swapped_shifted\": " << m.swapped_shifted
        << ", \"detection_rate\": " << m.detection_rate
        << ", \"false_positives\": " << m.false_positives
        << ", \"staleness_mean_s\": " << m.staleness_mean_s
        << ", \"staleness_max_s\": " << m.staleness_max_s
        << ", \"swap_latency_mean_s\": " << m.swap_latency_mean_s
        << ", \"retrains_completed\": " << run.retrains_completed
        << ", \"retrain_failures\": " << run.retrain_failures
        << ", \"plans_per_s\": " << run.plans_per_s
        << ", \"throughput_vs_no_freshness\": "
        << run.plans_per_s / control_plans_per_s
        << ", \"max_plan_batch_ms\": " << 1000.0 * run.max_plan_batch_s << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const double serve_horizon = options.cycles * kPeriodS;
  // Shift a third of the way in: the periodicity-break tenants need the
  // sliding phase ring to refill with post-shift observations before the
  // correlation collapses, so the shifted regime gets the longer leg.
  const double t_shift = serve_horizon / 3.0;

  std::vector<TenantWorkload> workloads;
  std::vector<Event> events;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    workloads.push_back(
        MakeTenantWorkload(i, options, serve_horizon, t_shift));
    for (const auto& q : workloads[i].test.queries()) {
      events.push_back({q.arrival_time, i});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });
  std::printf(
      "freshness: %zu tenants (%zu shifted at t=%.0f s), %zu arrivals over "
      "%.0f s, strategy %s, R=%zu\n\n",
      options.tenants, (options.tenants + 1) / 2, t_shift, events.size(),
      serve_horizon, options.strategy.c_str(), options.mc_samples);

  // Freshness-off control: the throughput denominator.
  const RunResult control = RunOnce(options, workloads, events, serve_horizon,
                                    /*freshness=*/false, 0);
  std::printf("control (freshness off): %.0f tenant-plans/s\n\n",
              control.plans_per_s);

  std::printf("%9s %7s %7s %6s %11s %11s %9s %11s %9s\n", "rworkers",
              "detect", "swapped", "falsep", "stale_avg_s", "stale_max_s",
              "latency_s", "plans_per_s", "vs_ctrl");
  std::vector<std::pair<RunResult, RowMetrics>> rows;
  for (std::size_t workers : options.retrain_workers) {
    RunResult run = RunOnce(options, workloads, events, serve_horizon,
                            /*freshness=*/true, workers);
    RowMetrics m = Summarize(workloads, run, t_shift);
    // The loop has to have actually worked for the numbers to mean
    // anything: every shifted tenant detected and swapped tear-free, every
    // unshifted tenant silent.
    if (m.drifted_shifted != m.shifted) {
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (workloads[i].shifted && run.drift_time[i] < 0.0) {
          std::fprintf(stderr, "  missed: tenant-%zu (%s shift)\n", i,
                       (i / 2) % 2 == 0 ? "level" : "period");
        }
      }
    }
    RS_CHECK(m.drifted_shifted == m.shifted)
        << m.drifted_shifted << "/" << m.shifted
        << " shifted tenants detected (retrain_workers=" << workers << ")";
    RS_CHECK(m.swapped_shifted == m.shifted)
        << m.swapped_shifted << "/" << m.shifted
        << " shifted tenants swapped (retrain_workers=" << workers << ")";
    if (m.false_positives != 0) {
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (!workloads[i].shifted && run.drift_time[i] >= 0.0) {
          std::fprintf(stderr, "  false positive: tenant-%zu %s at t=%.0f\n",
                       i, ts::DriftKindToString(run.drift_kind[i]),
                       run.drift_time[i]);
        }
      }
    }
    RS_CHECK(m.false_positives == 0)
        << m.false_positives << " unshifted tenants latched drift";
    RS_CHECK(run.retrain_failures == 0)
        << run.retrain_failures << " retrain failures";
    // Detection runs on the caller thread: identical across worker counts.
    RS_CHECK(rows.empty() || rows.front().first.drift_time == run.drift_time)
        << "drift detection times depend on retrain_workers";
    std::printf("%9zu %5zu/%zu %5zu/%zu %6zu %11.1f %11.1f %9.1f %11.0f "
                "%8.2fx\n",
                workers, m.drifted_shifted, m.shifted, m.swapped_shifted,
                m.shifted, m.false_positives, m.staleness_mean_s,
                m.staleness_max_s, m.swap_latency_mean_s, run.plans_per_s,
                run.plans_per_s / control.plans_per_s);
    rows.emplace_back(std::move(run), m);
  }

  if (!options.json_path.empty()) {
    WriteJson(options, serve_horizon, t_shift, rows, control.plans_per_s);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
