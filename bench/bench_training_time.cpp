// Section VII-B2 (text): training-time and decision-latency measurements.
// The paper reports ~100 s to train modules 1-3 on three weeks of CRS data,
// <= 7 s on four days of Alibaba data, and < 5 ms per scaling-decision
// update on all traces. This harness times the same operations on the
// synthetic stand-in traces, optionally across training worker-pool sizes
// (the fit is byte-identical for every pool size — asserted here — so the
// workers column is purely wall time).
//
// Usage:
//   bench_training_time [--workers=0,4] [--json=BENCH_training.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/common/thread_pool.hpp"

namespace {

using namespace rs::bench;

struct Options {
  std::vector<std::size_t> workers = {0};
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--workers=", 0) == 0) {
      options.workers = ParseSizeList(value());
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(!options.workers.empty());
  return options;
}

struct ScenarioTiming {
  std::string name;
  std::size_t queries = 0;
  std::vector<double> train_s;  ///< One entry per worker count.
  double decide_ms = 0.0;
};

ScenarioTiming TimeScenario(rs::bench::Scenario&& scenario,
                            const std::vector<std::size_t>& workers) {
  ScenarioTiming timing;
  timing.name = scenario.name;
  timing.queries = scenario.train.size();

  rs::core::TrainedPipeline trained;
  std::vector<double> first_rates;
  for (std::size_t worker_count : workers) {
    rs::common::ThreadPool pool(worker_count);
    rs::core::PipelineOptions pipeline;
    pipeline.dt = scenario.dt;
    pipeline.periodicity.aggregate_factor = scenario.aggregate_factor;
    pipeline.forecast_horizon = scenario.test.horizon();
    pipeline.training_pool = &pool;
    rs::Stopwatch train_watch;
    auto result = rs::api::TrainPipeline(scenario.train, pipeline);
    timing.train_s.push_back(train_watch.ElapsedSeconds());
    RS_CHECK(result.ok()) << result.status().ToString();
    trained = std::move(result).ValueOrDie();
    if (first_rates.empty()) {
      first_rates = trained.forecast.rates();
    } else {
      RS_CHECK(first_rates == trained.forecast.rates())
          << scenario.name << ": training with " << worker_count
          << " workers changed the fit";
    }
  }

  // Time one steady-state decision update (a planning round mid-test).
  auto policy = MakeVariantPolicy(trained, scenario,
                                  rs::core::ScalerVariant::kHittingProbability,
                                  0.9);
  rs::sim::SimContext ctx;
  ctx.now = scenario.test.horizon() / 2.0;
  std::vector<double> no_history;
  ctx.arrival_history = &no_history;
  // First call commits the look-ahead; the second measures steady re-planning.
  (void)policy->OnPlanningTick(ctx);
  ctx.scheduled_creations = 0;
  rs::Stopwatch decide_watch;
  (void)policy->OnPlanningTick(ctx);
  timing.decide_ms = decide_watch.ElapsedMillis();

  std::printf("%-10s %10zu", timing.name.c_str(), timing.queries);
  for (double s : timing.train_s) std::printf(" %13.2f", s);
  std::printf(" %15.3f\n", timing.decide_ms);
  return timing;
}

void WriteJson(const Options& options,
               const std::vector<ScenarioTiming>& timings) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"training_time\",\n"
      << "  \"workers\": [";
  for (std::size_t i = 0; i < options.workers.size(); ++i) {
    out << options.workers[i] << (i + 1 < options.workers.size() ? ", " : "");
  }
  out << "],\n  \"worker_parity\": \"identical\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    out << "    {\"trace\": \"" << t.name << "\", \"queries\": " << t.queries
        << ", \"train_s\": [";
    for (std::size_t w = 0; w < t.train_s.size(); ++w) {
      out << t.train_s[w] << (w + 1 < t.train_s.size() ? ", " : "");
    }
    out << "], \"decision_ms\": " << t.decide_ms << "}"
        << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  PrintHeader("Section VII-B2 — training time and decision latency");
  std::printf("%-10s %10s", "trace", "queries");
  for (std::size_t w : options.workers) std::printf("  train_s(w=%zu)", w);
  std::printf(" %15s\n", "decision_ms");

  std::vector<ScenarioTiming> timings;
  timings.push_back(TimeScenario(MakeCrsScenario(), options.workers));
  timings.push_back(TimeScenario(MakeGoogleScenario(), options.workers));
  timings.push_back(TimeScenario(MakeAlibabaScenario(), options.workers));

  std::printf("\nPaper reference: ~100 s (CRS, 3 weeks), <= 7 s (Alibaba,\n"
              "4 days) training; < 5 ms per decision update. Training here is\n"
              "faster because the synthetic stand-ins use coarser bins; the\n"
              "ordering and the millisecond-scale decisions are the point.\n");

  if (!options.json_path.empty()) {
    WriteJson(options, timings);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
