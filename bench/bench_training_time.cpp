// Section VII-B2 (text): training-time and decision-latency measurements.
// The paper reports ~100 s to train modules 1-3 on three weeks of CRS data,
// <= 7 s on four days of Alibaba data, and < 5 ms per scaling-decision
// update on all traces. This harness times the same operations on the
// synthetic stand-in traces.
#include <cstdio>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"

namespace {

void TimeScenario(rs::bench::Scenario&& scenario) {
  using namespace rs::bench;
  rs::Stopwatch train_watch;
  const auto trained = TrainOn(scenario);
  const double train_s = train_watch.ElapsedSeconds();

  // Time one steady-state decision update (a planning round mid-test).
  auto policy = MakeVariantPolicy(trained, scenario,
                                  rs::core::ScalerVariant::kHittingProbability,
                                  0.9);
  rs::sim::SimContext ctx;
  ctx.now = scenario.test.horizon() / 2.0;
  std::vector<double> no_history;
  ctx.arrival_history = &no_history;
  // First call commits the look-ahead; the second measures steady re-planning.
  (void)policy->OnPlanningTick(ctx);
  ctx.scheduled_creations = 0;
  rs::Stopwatch decide_watch;
  (void)policy->OnPlanningTick(ctx);
  const double decide_ms = decide_watch.ElapsedMillis();

  std::printf("%-10s %10zu %14.2f %16.3f\n", scenario.name.c_str(),
              scenario.train.size(), train_s, decide_ms);
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Section VII-B2 — training time and decision latency");
  std::printf("%-10s %10s %14s %16s\n", "trace", "queries", "train_time_s",
              "decision_ms");
  TimeScenario(MakeCrsScenario());
  TimeScenario(MakeGoogleScenario());
  TimeScenario(MakeAlibabaScenario());
  std::printf("\nPaper reference: ~100 s (CRS, 3 weeks), <= 7 s (Alibaba,\n"
              "4 days) training; < 5 ms per decision update. Training here is\n"
              "faster because the synthetic stand-ins use coarser bins; the\n"
              "ordering and the millisecond-scale decisions are the point.\n");
  return 0;
}
