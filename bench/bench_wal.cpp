// Write-ahead journal overhead: the same deterministic serving session —
// a fleet of cloned archetype tenants, one observe per tenant per step,
// then a PlanAll batch — run once with no journal attached (the control)
// and once per fsync policy {none, every-64, every-record}, timing the
// serving loop only. Reported per policy:
//
//   append_overhead  — serve_on_s / serve_off_s, the journal's whole
//                      serving tax (encode + frame + CRC + write + policy
//                      fsyncs) as a within-run ratio, machine cancelled;
//   bytes_per_event  — on-disk journal bytes / events appended (the wire
//                      format's cost; moves only when the encoding or the
//                      framing changes);
//   fsyncs           — how many fsync(2) calls the policy actually issued
//                      (every-record ~= records, every-64 ~= records/64,
//                      none = rotations + the final explicit Sync only).
//
// Before anything is timed, a self-check session runs each policy through
// the real crash path: serve, drop the fleet and journal with no shutdown,
// reopen, Recover() — which re-drives the tail through trace::Replay and
// verifies every action byte-identically — and continue. The bench aborts
// if recovery fails, so the numbers below are always measured on a
// configuration whose durability story actually holds. After each timed
// run the journal is recovered once more and must replay every appended
// event.
//
// Gated metrics (tools/bench_gate.py, "wal"): append_overhead and
// bytes_per_event per policy, both lower-is-better. Absolute events/sec
// are reported, gated only with --gate-absolute.
//
// Usage:
//   bench_wal [--tenants=16] [--steps=400] [--mc=20] [--archetypes=4]
//             [--segment-mb=4] [--dir=bench_wal.dir]
//             [--json=BENCH_wal.json]
//
// CI's perf-smoke invocation is in .github/workflows/ci.yml; the committed
// baseline lives at bench/baselines/BENCH_wal.baseline.json.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/wal/wal.hpp"

namespace {

using namespace rs;

constexpr double kBinS = 30.0;
constexpr double kTrainS = 1800.0;

struct Options {
  std::size_t tenants = 16;
  std::size_t steps = 400;
  std::size_t mc_samples = 20;
  std::size_t archetypes = 4;
  std::uint64_t segment_mb = 4;
  std::string dir = "bench_wal.dir";
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--tenants=", 0) == 0) {
      options.tenants = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--steps=", 0) == 0) {
      options.steps = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--mc=", 0) == 0) {
      options.mc_samples = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--archetypes=", 0) == 0) {
      options.archetypes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--segment-mb=", 0) == 0) {
      options.segment_mb = std::stoull(value());
    } else if (arg.rfind("--dir=", 0) == 0) {
      options.dir = value();
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(options.tenants > 0 && options.steps >= 8);
  RS_CHECK(options.archetypes > 0 && options.archetypes <= options.tenants);
  RS_CHECK(options.segment_mb > 0);
  return options;
}

const char* kArchetypeSpecs[] = {
    "robust_hp:target=0.9",
    "robust_rt:target=1.0",
    "robust_cost:target=2.0",
    "backup_pool:pool_size=2",
};

std::string TrainArchetype(std::size_t k, const Options& options) {
  const double period = 600.0;
  std::vector<double> rates;
  for (double t = 0.5 * kBinS; t < kTrainS; t += kBinS) {
    const double phase = std::fmod(t, period) / period;
    rates.push_back(
        1.0 +
        0.6 * std::sin(2.0 * M_PI * (phase + static_cast<double>(k) / 7.3)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kBinS);
  stats::Rng rng(500 + k);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto spec = api::ParseStrategySpec(
      kArchetypeSpecs[k %
                      (sizeof(kArchetypeSpecs) / sizeof(kArchetypeSpecs[0]))]);
  RS_CHECK(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(trace)
                    .WithBinWidth(kBinS)
                    .WithForecastHorizon(2.0 * kTrainS)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(options.mc_samples)
                    .Build();
  RS_CHECK(scaler.ok()) << scaler.status().ToString();
  std::ostringstream out;
  RS_CHECK(scaler->SaveState(out).ok());
  return std::move(out).str();
}

api::ScalerFleet BuildFleet(const Options& options,
                            const std::vector<std::string>& buffers) {
  api::ScalerFleet fleet(0);
  for (std::size_t i = 0; i < options.tenants; ++i) {
    std::istringstream in(buffers[i % buffers.size()]);
    auto scaler = api::ScalerBuilder::RestoreState(in);
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(
        fleet.Register("fn-" + std::to_string(i), std::move(scaler).ValueOrDie())
            .ok());
  }
  return fleet;
}

/// Serves steps [first, last): one observe per tenant, then one PlanAll.
/// Appends (tenants + 1) journal events per step when a tap is attached.
void ServeSteps(api::ScalerFleet* fleet, const Options& options,
                std::size_t first, std::size_t last) {
  for (std::size_t step = first; step < last; ++step) {
    const double now = kTrainS + 2.0 * static_cast<double>(step + 1);
    for (std::size_t i = 0; i < options.tenants; ++i) {
      RS_CHECK(fleet->Observe("fn-" + std::to_string(i),
                              now - 1.0 + 0.001 * static_cast<double>(i))
                   .ok());
    }
    for (const auto& plan : fleet->PlanAll(now)) {
      RS_CHECK(plan.status.ok()) << plan.status.ToString();
    }
  }
}

std::uint64_t JournalBytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      total += static_cast<std::uint64_t>(entry.file_size());
    }
  }
  return total;
}

struct PolicyResult {
  std::string policy;           ///< "off", "none", "every-64", "every-record".
  double serve_s = 0.0;
  double append_overhead = 0.0; ///< serve_on / serve_off (1.0 for "off").
  std::uint64_t events = 0;     ///< Journal records appended (0 for "off").
  double bytes_per_event = 0.0;
  std::uint64_t fsyncs = 0;
  std::uint64_t segments = 0;
};

wal::JournalPolicy MakePolicy(const Options& options, wal::FsyncPolicy fsync) {
  wal::JournalPolicy policy;
  policy.fsync = fsync;
  policy.fsync_every_n = 64;
  policy.segment_bytes = options.segment_mb << 20;
  return policy;
}

/// The pre-timing self-check: serve half the steps journaled, "crash"
/// (drop both objects, no shutdown), recover, and serve the rest — the
/// bench only times configurations whose recovery story verifiably holds.
void SelfCheck(const Options& options, const std::vector<std::string>& buffers,
               wal::FsyncPolicy fsync) {
  namespace fs = std::filesystem;
  const std::string dir = options.dir + "/selfcheck";
  std::error_code ignored;
  fs::remove_all(dir, ignored);
  Options small = options;
  small.steps = 8;
  {
    wal::FleetJournal journal;
    const Status opened = journal.Open(dir, MakePolicy(small, fsync));
    RS_CHECK(opened.ok()) << opened.ToString();
    api::ScalerFleet fleet = BuildFleet(small, buffers);
    RS_CHECK(wal::EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, small, 0, small.steps / 2);
    // Scope exit with no Detach, no Sync, no checkpoint: the in-process
    // crash. kNone still recovers — the page cache survives a dead
    // process; fsync only matters for power loss.
  }
  wal::FleetJournal journal;
  const Status opened = journal.Open(dir, MakePolicy(small, fsync));
  RS_CHECK(opened.ok()) << opened.ToString();
  auto fleet = journal.Recover();
  RS_CHECK(fleet.ok()) << fleet.status().ToString();
  RS_CHECK(journal.Attach(&*fleet).ok());
  ServeSteps(&*fleet, small, small.steps / 2, small.steps);
  RS_CHECK(journal.status().ok()) << journal.status().ToString();
  const std::uint64_t expected =
      small.tenants +
      static_cast<std::uint64_t>(small.steps) * (small.tenants + 1);
  RS_CHECK(journal.last_lsn() == expected)
      << "self-check lost or duplicated records: LSN " << journal.last_lsn()
      << ", expected " << expected;
  fs::remove_all(dir, ignored);
}

PolicyResult RunOff(const Options& options,
                    const std::vector<std::string>& buffers) {
  PolicyResult result;
  result.policy = "off";
  result.append_overhead = 1.0;
  api::ScalerFleet fleet = BuildFleet(options, buffers);
  Stopwatch watch;
  ServeSteps(&fleet, options, 0, options.steps);
  result.serve_s = watch.ElapsedSeconds();
  return result;
}

PolicyResult RunPolicy(const Options& options,
                       const std::vector<std::string>& buffers,
                       wal::FsyncPolicy fsync, double serve_off_s) {
  SelfCheck(options, buffers, fsync);

  namespace fs = std::filesystem;
  const std::string dir = options.dir + "/timed";
  std::error_code ignored;
  fs::remove_all(dir, ignored);

  PolicyResult result;
  result.policy = wal::FsyncPolicyName(fsync);
  wal::FleetJournal journal;
  const Status opened = journal.Open(dir, MakePolicy(options, fsync));
  RS_CHECK(opened.ok()) << opened.ToString();
  api::ScalerFleet fleet = BuildFleet(options, buffers);
  RS_CHECK(wal::EnableJournal(&fleet, &journal).ok());
  const std::uint64_t registered = journal.last_lsn();

  Stopwatch watch;
  ServeSteps(&fleet, options, 0, options.steps);
  result.serve_s = watch.ElapsedSeconds();
  RS_CHECK(journal.status().ok()) << journal.status().ToString();
  RS_CHECK(journal.Sync().ok());
  journal.Detach();

  result.events = journal.last_lsn() - registered;
  RS_CHECK(result.events ==
           static_cast<std::uint64_t>(options.steps) * (options.tenants + 1))
      << "journal dropped records";
  result.append_overhead = result.serve_s / serve_off_s;
  result.fsyncs = journal.fsyncs();
  result.bytes_per_event = static_cast<double>(JournalBytes(dir)) /
                           static_cast<double>(journal.last_lsn());

  // Post-run artifact check: everything appended must recover and replay.
  wal::FleetJournal reopened;
  const Status reopen = reopened.Open(dir, MakePolicy(options, fsync));
  RS_CHECK(reopen.ok()) << reopen.ToString();
  RS_CHECK(reopened.open_report().truncated_bytes == 0);
  result.segments = reopened.open_report().segments;
  auto recovered = reopened.Recover();
  RS_CHECK(recovered.ok()) << recovered.status().ToString();
  RS_CHECK(reopened.last_lsn() == journal.last_lsn());
  fs::remove_all(dir, ignored);
  return result;
}

void WriteJson(const Options& options, const std::vector<PolicyResult>& runs,
               std::uint64_t events_per_run) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"wal\",\n"
      << "  \"tenants\": " << options.tenants << ",\n"
      << "  \"steps\": " << options.steps << ",\n"
      << "  \"events\": " << events_per_run << ",\n"
      << "  \"segment_mb\": " << options.segment_mb << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    out << "    {\"policy\": \"" << run.policy << "\", \"serve_s\": "
        << run.serve_s << ", \"events_per_s\": "
        << static_cast<double>(events_per_run) / run.serve_s
        << ", \"append_overhead\": " << run.append_overhead
        << ", \"bytes_per_event\": " << run.bytes_per_event
        << ", \"fsyncs\": " << run.fsyncs
        << ", \"segments\": " << run.segments << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  Stopwatch train_watch;
  std::vector<std::string> buffers;
  for (std::size_t k = 0; k < options.archetypes; ++k) {
    buffers.push_back(TrainArchetype(k, options));
  }
  const std::uint64_t events_per_run =
      static_cast<std::uint64_t>(options.steps) * (options.tenants + 1);
  std::printf(
      "wal: %zu tenants (%zu archetypes, trained in %.2f s), %zu steps = "
      "%llu journal events per run, %llu MiB segments\n\n",
      options.tenants, options.archetypes, train_watch.ElapsedSeconds(),
      options.steps, static_cast<unsigned long long>(events_per_run),
      static_cast<unsigned long long>(options.segment_mb));

  std::vector<PolicyResult> runs;
  runs.push_back(RunOff(options, buffers));
  const double serve_off_s = runs.front().serve_s;
  for (const auto fsync :
       {wal::FsyncPolicy::kNone, wal::FsyncPolicy::kEveryN,
        wal::FsyncPolicy::kEveryRecord}) {
    runs.push_back(RunPolicy(options, buffers, fsync, serve_off_s));
  }

  std::printf("%14s %10s %10s %10s %12s %8s %8s\n", "policy", "serve_s",
              "events/s", "overhead", "B/event", "fsyncs", "segs");
  for (const auto& run : runs) {
    std::printf("%14s %10.3f %10.0f %9.3fx %12.1f %8llu %8llu\n",
                run.policy.c_str(), run.serve_s,
                static_cast<double>(events_per_run) / run.serve_s,
                run.append_overhead, run.bytes_per_event,
                static_cast<unsigned long long>(run.fsyncs),
                static_cast<unsigned long long>(run.segments));
  }

  std::error_code ignored;
  std::filesystem::remove_all(options.dir, ignored);
  if (!options.json_path.empty()) {
    WriteJson(options, runs, events_per_run);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
