// Fig. 10(a,b,c): nominal vs actual QoS/cost levels on the CRS trace.
//
// For each variant, sweep the nominal target and report the achieved level;
// the paper's plots show points hugging the y = x diagonal. The harness
// also demonstrates the Section VI-C calibration guideline by fitting a
// CalibrationCurve to the HP sweep and showing the corrected nominal level.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/core/calibration.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 10(a-c) — nominal vs actual HP / RT / cost levels (CRS)");

  auto scenario = MakeCrsScenario();
  const auto trained = TrainOn(scenario);

  // ---- (a) hitting probability. ----
  std::printf("\n(a) hitting probability\n%12s %12s\n", "nominal", "actual");
  std::vector<double> nominal_hp{0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  std::vector<double> actual_hp;
  for (double target : nominal_hp) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    target);
    const auto m = RunStrategy(scenario, policy.get());
    actual_hp.push_back(m.hit_rate);
    std::printf("%12.2f %12.3f\n", target, m.hit_rate);
  }

  // ---- (b) response time (wait component d − µs). ----
  std::printf("\n(b) mean waiting time (d - mu_s), seconds\n%12s %12s\n",
              "nominal", "actual");
  for (double target : {0.5, 1.0, 2.0, 4.0, 8.0, 12.0}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kResponseTime,
                                    target);
    const auto m = RunStrategy(scenario, policy.get());
    std::printf("%12.2f %12.3f\n", target, m.wait_avg);
  }

  // ---- (c) cost (mean idle seconds per served instance). ----
  std::printf("\n(c) mean idle time per instance, seconds\n%12s %12s\n",
              "nominal", "actual");
  for (double target : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kCost, target);
    auto result = rs::sim::Simulate(scenario.test, policy.get(),
                                    EngineFor(scenario));
    RS_CHECK(result.ok());
    double idle_plus_s = 0.0, proc = 0.0;
    std::size_t used = 0;
    for (const auto& inst : result->instances) {
      if (!inst.served_query) continue;
      ++used;
      idle_plus_s += std::max(0.0, inst.lifecycle_cost - 13.0);
    }
    for (const auto& q : result->queries) proc += q.processing_time;
    const double achieved =
        used > 0 ? idle_plus_s / static_cast<double>(used) -
                       proc / static_cast<double>(result->queries.size())
                 : 0.0;
    std::printf("%12.1f %12.2f\n", target, achieved);
  }

  // ---- Calibration guideline (Section VI-C). ----
  auto curve = rs::core::CalibrationCurve::Make(nominal_hp, actual_hp);
  if (curve.ok()) {
    std::printf("\ncalibration: to actually achieve HP 0.90, request nominal "
                "%.3f\n",
                curve->PickNominal(0.90));
  }
  std::printf("\nExpected (paper Fig. 10(a-c)): points near the y = x line —\n"
              "nominal targets translate into matching achieved levels.\n");
  return 0;
}
