// Ablation: ADMM hyper-parameter sensitivity — ρ (convergence speed),
// β1 (smoothness), β2 (periodicity strength) — measured as iterations to
// tolerance and intensity-recovery MSE on a periodic ground truth. Backs
// the default choices baked into PipelineOptions.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/core/admm.hpp"
#include "rs/stats/empirical.hpp"

namespace {

struct FitOutcome {
  std::size_t iterations;
  bool converged;
  double mse;
};

FitOutcome FitWith(const std::vector<double>& counts,
                   const std::vector<double>& truth, double dt, double rho,
                   double beta1, double beta2, std::size_t period) {
  rs::core::NhppConfig config;
  config.dt = dt;
  config.beta1 = beta1;
  config.beta2 = beta2;
  config.period = period;
  rs::core::AdmmOptions options;
  options.rho = rho;
  options.max_iterations = 400;
  rs::core::AdmmInfo info;
  auto model = rs::core::FitNhpp(counts, config, options, &info);
  RS_CHECK(model.ok()) << model.status().ToString();
  return {info.iterations, info.converged,
          rs::stats::MeanSquaredError(model->Intensity(), truth)};
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Ablation — ADMM hyper-parameters (rho, beta1, beta2)");

  // Periodic ground truth, one week of 10-min bins, daily period (144).
  const std::size_t period = 144, t = 7 * period;
  const double dt = 600.0;
  std::vector<double> truth(t);
  rs::stats::Rng rng(11);
  std::vector<double> counts(t);
  for (std::size_t i = 0; i < t; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(i % period) /
                         static_cast<double>(period);
    truth[i] = 0.05 + 0.04 * std::sin(phase);
    counts[i] =
        static_cast<double>(rs::stats::SamplePoisson(&rng, truth[i] * dt));
  }

  std::printf("\nrho sweep (beta1=10, beta2=50):\n%8s %10s %10s %12s\n", "rho",
              "iters", "converged", "mse");
  for (double rho : {0.1, 0.5, 1.0, 5.0, 20.0}) {
    const auto out = FitWith(counts, truth, dt, rho, 10.0, 50.0, period);
    std::printf("%8.2f %10zu %10s %12.3e\n", rho, out.iterations,
                out.converged ? "yes" : "no", out.mse);
  }

  std::printf("\nbeta1 sweep (rho=1, beta2=50):\n%8s %10s %12s\n", "beta1",
              "iters", "mse");
  for (double beta1 : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
    const auto out = FitWith(counts, truth, dt, 1.0, beta1, 50.0, period);
    std::printf("%8.1f %10zu %12.3e\n", beta1, out.iterations, out.mse);
  }

  std::printf("\nbeta2 sweep (rho=1, beta1=10):\n%8s %10s %12s\n", "beta2",
              "iters", "mse");
  for (double beta2 : {0.0, 5.0, 50.0, 500.0, 5000.0}) {
    const auto out =
        FitWith(counts, truth, dt, 1.0, 10.0, beta2, beta2 > 0.0 ? period : 0);
    std::printf("%8.1f %10zu %12.3e\n", beta2, out.iterations, out.mse);
  }

  std::printf("\nExpected: mid-range rho converges fastest; moderate beta1\n"
              "and beta2 minimize MSE (beta2=0 reproduces the Table III\n"
              "no-regularization penalty; huge values over-smooth).\n");
  return 0;
}
