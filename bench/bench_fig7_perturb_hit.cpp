// Fig. 7: hit_rate vs relative cost for AdapBP and RobustScaler-HP under
// the same growing CRS perturbations as Fig. 6 (c = 1, 2, 4, 6). The same
// sweep is printed with the hit-rate column being the headline metric.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/workload/perturbation.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 7 — hit rate vs relative cost under perturbed CRS data");

  auto base = MakeCrsScenario();
  for (double c : {1.0, 2.0, 4.0, 6.0}) {
    rs::workload::PerturbationOptions popts;
    popts.add_factor = c;
    popts.seed = 123;  // Different draw than Fig. 6 to show robustness.
    Scenario scenario;
    scenario.name = "CRS-perturbed";
    auto train = rs::workload::PerturbTrace(base.train, popts);
    auto test = rs::workload::PerturbTrace(base.test, popts);
    RS_CHECK(train.ok() && test.ok());
    scenario.train = std::move(*train);
    scenario.test = std::move(*test);
    scenario.pending = base.pending;
    // 1-min bins so the 5-minute perturbation windows are resolvable by the
    // NHPP fit (they vanish at the base scenario's 10-min bins).
    scenario.dt = 60.0;
    scenario.aggregate_factor = 5;
    ComputeReactiveReference(&scenario);

    std::printf("\n---- perturbation size c = %.0f (test queries: %zu) ----\n",
                c, scenario.test.size());
    PrintParetoHeader();
    for (double mult : {50.0, 150.0, 400.0, 800.0, 1600.0}) {
      auto adap = MakeNamedStrategy(
          {.name = "adaptive_backup_pool", .params = {{"multiplier", mult}}});
      PrintParetoRow("AdapBP", mult, RunStrategy(scenario, adap.get()),
                     scenario.reactive_cost);
    }
    const auto trained = TrainOn(scenario);
    for (double target : {0.5, 0.7, 0.8, 0.9, 0.95}) {
      auto policy = MakeVariantPolicy(
          trained, scenario, rs::core::ScalerVariant::kHittingProbability,
          target);
      PrintParetoRow("RobustScaler-HP", target,
                     RunStrategy(scenario, policy.get()),
                     scenario.reactive_cost);
    }
  }
  std::printf("\nExpected (paper Fig. 7): AdapBP's hit rate degrades with c\n"
              "while RobustScaler-HP holds its levels at comparable cost.\n");
  return 0;
}
