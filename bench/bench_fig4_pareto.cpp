// Fig. 4(a-f): Pareto plots — hit_rate vs relative_cost and rt_avg vs
// relative_cost for BP, AdapBP, RobustScaler-HP/RT/cost on each of the
// three traces. Each printed row is one point of one line in the figure.
//
// Expected shape (paper): RobustScaler-HP/RT dominate BP everywhere and
// AdapBP on Google/Alibaba; on CRS AdapBP is competitive at low cost but
// RobustScaler catches up as cost grows; RobustScaler-cost wins except at
// high-cost CRS operating points.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using rs::bench::Scenario;

void RunScenario(Scenario&& scenario,
                 const std::vector<double>& bp_sizes,
                 const std::vector<double>& adap_multipliers,
                 const std::vector<double>& hp_targets,
                 const std::vector<double>& rt_targets,
                 const std::vector<double>& cost_targets) {
  using namespace rs::bench;
  std::printf("\n---- trace: %s (%zu train / %zu test queries, reactive cost "
              "%.0f s) ----\n",
              scenario.name.c_str(), scenario.train.size(),
              scenario.test.size(), scenario.reactive_cost);
  PrintParetoHeader();

  for (double b : bp_sizes) {
    auto bp = MakeNamedStrategy(
        {.name = "backup_pool", .params = {{"pool_size", b}}});
    PrintParetoRow("BP", b, RunStrategy(scenario, bp.get()),
                   scenario.reactive_cost);
  }
  for (double mult : adap_multipliers) {
    auto adap = MakeNamedStrategy(
        {.name = "adaptive_backup_pool", .params = {{"multiplier", mult}}});
    PrintParetoRow("AdapBP", mult, RunStrategy(scenario, adap.get()),
                   scenario.reactive_cost);
  }

  const auto trained = TrainOn(scenario);
  std::printf("# NHPP trained: period=%zu bins, admm_iters=%zu\n",
              trained.period.period, trained.admm_info.iterations);
  for (double target : hp_targets) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    target);
    PrintParetoRow("RobustScaler-HP", target,
                   RunStrategy(scenario, policy.get()), scenario.reactive_cost);
  }
  for (double target : rt_targets) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kResponseTime,
                                    target);
    PrintParetoRow("RobustScaler-RT", target,
                   RunStrategy(scenario, policy.get()), scenario.reactive_cost);
  }
  for (double target : cost_targets) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kCost, target);
    PrintParetoRow("RobustScaler-cost", target,
                   RunStrategy(scenario, policy.get()), scenario.reactive_cost);
  }
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader(
      "Fig. 4 — Pareto fronts: hit_rate / rt_avg vs relative cost, 5 "
      "autoscalers x 3 traces");

  // CRS: paper sweeps B in 0..8.
  RunScenario(MakeCrsScenario(),
              /*bp_sizes=*/{0, 1, 2, 3, 5, 8},
              /*adap_multipliers=*/{50, 150, 400, 800, 1600},
              /*hp_targets=*/{0.5, 0.7, 0.8, 0.9, 0.95, 0.99},
              /*rt_targets=*/{10.0, 6.0, 3.0, 1.0, 0.3},
              /*cost_targets=*/{15.0, 60.0, 180.0, 400.0, 800.0});

  // Google: paper sweeps B in 0..40.
  RunScenario(MakeGoogleScenario(),
              /*bp_sizes=*/{0, 2, 5, 10, 20, 40},
              /*adap_multipliers=*/{10, 25, 60, 120, 250},
              /*hp_targets=*/{0.5, 0.7, 0.8, 0.9, 0.95, 0.99},
              /*rt_targets=*/{10.0, 6.0, 3.0, 1.0, 0.3},
              /*cost_targets=*/{2.0, 8.0, 20.0, 60.0, 150.0});

  // Alibaba: paper sweeps B in 0..450 (we run a scaled trace; the sweep is
  // scaled accordingly).
  RunScenario(MakeAlibabaScenario(),
              /*bp_sizes=*/{0, 5, 15, 30, 60, 100},
              /*adap_multipliers=*/{5, 15, 35, 80, 160},
              /*hp_targets=*/{0.5, 0.7, 0.8, 0.9, 0.95, 0.99},
              /*rt_targets=*/{10.0, 6.0, 3.0, 1.0, 0.3},
              /*cost_targets=*/{2.0, 8.0, 20.0, 60.0, 150.0});
  return 0;
}
