// Ablation: banded Cholesky vs matrix-free PCG for the ADMM r-subproblem
// (the design choice called out in DESIGN.md). Reports wall time and final
// loss for both paths across period lengths — Cholesky wins for short
// periods, PCG for long ones where the O(T·L²) band factor dominates.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/core/admm.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Ablation — ADMM r-subproblem solver: banded Cholesky vs PCG");

  rs::stats::Rng rng(7);
  std::printf("%8s %8s | %14s %14s | %14s %14s\n", "T", "L", "chol_time_s",
              "chol_loss", "pcg_time_s", "pcg_loss");

  struct Case {
    std::size_t t;
    std::size_t period;
  };
  for (const Case c : {Case{1440, 48}, Case{2880, 288}, Case{4032, 1008}}) {
    std::vector<double> counts(c.t);
    for (std::size_t i = 0; i < c.t; ++i) {
      const double phase = 2.0 * M_PI * static_cast<double>(i % c.period) /
                           static_cast<double>(c.period);
      const double rate = 2.0 + 1.5 * std::sin(phase);
      counts[i] = static_cast<double>(rs::stats::SamplePoisson(&rng, rate));
    }
    rs::core::NhppConfig config;
    config.dt = 60.0;
    config.beta1 = 10.0;
    config.beta2 = 50.0;
    config.period = c.period;
    rs::core::AdmmOptions options;
    options.max_iterations = 40;

    double times[2] = {0.0, 0.0};
    double losses[2] = {0.0, 0.0};
    int idx = 0;
    for (auto solver : {rs::core::RSubproblemSolver::kBandedCholesky,
                        rs::core::RSubproblemSolver::kPcg}) {
      options.solver = solver;
      rs::Stopwatch watch;
      auto model = rs::core::FitNhpp(counts, config, options);
      times[idx] = watch.ElapsedSeconds();
      RS_CHECK(model.ok()) << model.status().ToString();
      auto loss = model->Loss(counts);
      RS_CHECK(loss.ok());
      losses[idx] = *loss;
      ++idx;
    }
    std::printf("%8zu %8zu | %14.3f %14.1f | %14.3f %14.1f\n", c.t, c.period,
                times[0], losses[0], times[1], losses[1]);
  }
  std::printf("\nBoth solvers reach the same loss; the faster column flips\n"
              "from Cholesky to PCG as the period (bandwidth) grows.\n");
  return 0;
}
