// Planning hot-path throughput: decisions/sec and ns/decision for one
// RobustScaler Plan(t) round, optimized kernels vs the RS_REFERENCE_KERNELS
// fallback, across Monte Carlo sample counts R and decision variants.
//
// The harness is also the parity proof the optimization rests on: before
// timing, it drives the reference and optimized planners through identical
// round schedules under a fixed seed and aborts unless the two emit
// byte-identical action sequences, and it trains the same pipeline under
// 0/1/8 workers and aborts unless the fitted forecasts are byte-identical.
//
// Usage:
//   bench_plan_hot_path [--mc=100,1000,10000] [--rounds=50] [--qps=2]
//                       [--variants=hp,rt,cost] [--workers=0,1,8]
//                       [--plan-workers=0,8]
//                       [--seed=20260730] [--json=BENCH_plan.json]
//
// --plan-workers sweeps the intra-plan Monte Carlo sharding pool: each
// listed worker count re-drives the identical optimized-kernel schedule
// with that pool attached to the planner and aborts unless the emitted
// actions are byte-identical both to the reference run and to every other
// worker count (pool size is a wall-time knob, never a behavior knob).
//
// See EXPERIMENTS.md ("Performance methodology") for the JSON schema.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/api/api.hpp"
#include "rs/common/kernels.hpp"
#include "rs/common/logging.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/core/sequential_scaler.hpp"
#include "rs/workload/synthetic.hpp"

namespace {

using namespace rs;

struct Options {
  std::vector<std::size_t> mc = {100, 1000, 10000};
  std::size_t rounds = 50;
  double qps = 2.0;
  std::vector<core::ScalerVariant> variants = {
      core::ScalerVariant::kHittingProbability,
      core::ScalerVariant::kResponseTime, core::ScalerVariant::kCost};
  std::vector<std::size_t> workers = {0, 1, 8};
  std::vector<std::size_t> plan_workers = {0, 8};
  std::uint64_t seed = 20260730;
  std::string json_path;
};

const char* VariantKey(core::ScalerVariant v) {
  switch (v) {
    case core::ScalerVariant::kHittingProbability:
      return "hp";
    case core::ScalerVariant::kResponseTime:
      return "rt";
    case core::ScalerVariant::kCost:
      return "cost";
  }
  return "?";
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--mc=", 0) == 0) {
      options.mc = bench::ParseSizeList(value());
    } else if (arg.rfind("--rounds=", 0) == 0) {
      options.rounds = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--qps=", 0) == 0) {
      options.qps = std::stod(value());
    } else if (arg.rfind("--variants=", 0) == 0) {
      options.variants.clear();
      const std::string list = value();
      for (std::size_t pos = 0; pos <= list.size();) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos) end = list.size();
        const std::string token = list.substr(pos, end - pos);
        if (token == "hp") {
          options.variants.push_back(core::ScalerVariant::kHittingProbability);
        } else if (token == "rt") {
          options.variants.push_back(core::ScalerVariant::kResponseTime);
        } else if (token == "cost") {
          options.variants.push_back(core::ScalerVariant::kCost);
        } else {
          std::fprintf(stderr, "unknown variant: %s\n", token.c_str());
          std::exit(2);
        }
        pos = end + 1;
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = bench::ParseSizeList(value());
    } else if (arg.rfind("--plan-workers=", 0) == 0) {
      options.plan_workers = bench::ParseSizeList(value());
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(value());
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(!options.mc.empty() && options.rounds > 0 &&
           !options.variants.empty());
  return options;
}

/// Sinusoidal test intensity around `qps` with a strictly positive floor,
/// on the production-scale grid (1-min bins over at least a day — the
/// default forecast shape ScalerBuilder trains, 1440+ bins).
workload::PiecewiseConstantIntensity MakeForecast(double qps, double horizon) {
  const double dt = 60.0, period = 3600.0;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period) / period;
    rates.push_back(qps * (1.0 + 0.6 * std::sin(2.0 * M_PI * phase)) + 1e-3);
  }
  return *workload::PiecewiseConstantIntensity::Make(std::move(rates), dt);
}

struct RunResult {
  double seconds = 0.0;
  std::size_t decisions = 0;
  std::size_t rounds = 0;
  std::vector<sim::ScalingAction> actions;
};

/// Drives `rounds` planning rounds with nothing outstanding (every round
/// commits a full depth of decisions — the steady worst case).
RunResult DriveRounds(const workload::PiecewiseConstantIntensity& forecast,
                      core::ScalerVariant variant, std::size_t mc_samples,
                      std::size_t rounds, std::uint64_t seed,
                      double planning_interval,
                      common::ThreadPool* plan_pool = nullptr) {
  core::SequentialScalerOptions options;
  options.variant = variant;
  options.mc_samples = mc_samples;
  options.planning_interval = planning_interval;
  options.seed = seed;
  options.rt_excess = 0.5;
  options.idle_budget = 1.0;
  options.planning_pool = plan_pool;
  core::RobustScalerPolicy policy(
      forecast, stats::DurationDistribution::Deterministic(13.0), options);

  std::vector<double> history;
  sim::SimContext ctx;
  ctx.arrival_history = &history;

  RunResult run;
  run.rounds = rounds;
  run.actions.reserve(rounds + 1);
  // Warmup (not timed): first-touch buffer growth in both kernel modes.
  run.actions.push_back(policy.Initialize(ctx));
  Stopwatch watch;
  for (std::size_t i = 1; i <= rounds; ++i) {
    ctx.now = static_cast<double>(i) * planning_interval;
    run.actions.push_back(policy.OnPlanningTick(ctx));
    run.decisions += run.actions.back().creation_times.size();
  }
  run.seconds = watch.ElapsedSeconds();
  return run;
}

void CheckActionParity(const RunResult& reference, const RunResult& optimized,
                       const char* what) {
  RS_CHECK(reference.actions.size() == optimized.actions.size()) << what;
  for (std::size_t i = 0; i < reference.actions.size(); ++i) {
    const auto& a = reference.actions[i].creation_times;
    const auto& b = optimized.actions[i].creation_times;
    RS_CHECK(a.size() == b.size())
        << what << ": round " << i << " emitted " << a.size() << " vs "
        << b.size() << " creations";
    for (std::size_t k = 0; k < a.size(); ++k) {
      RS_CHECK(a[k] == b[k]) << what << ": round " << i << ", creation " << k
                             << " diverged (" << a[k] << " vs " << b[k] << ")";
    }
  }
}

struct ParallelPoint {
  std::size_t workers = 0;
  double seconds = 0.0;
  double decisions_per_s = 0.0;
  double speedup_vs_serial = 0.0;  ///< serial optimized time / this time.
};

struct BenchRow {
  std::string variant;
  std::size_t mc = 0;
  std::size_t decisions = 0;
  double opt_s = 0.0;
  double ref_s = 0.0;
  double opt_decisions_per_s = 0.0;
  double ref_decisions_per_s = 0.0;
  double opt_ns_per_decision = 0.0;
  double ref_ns_per_decision = 0.0;
  double speedup = 0.0;
  std::vector<ParallelPoint> plan_workers;
};

/// Trains one pipeline per worker count and verifies the fits (and the
/// actions a policy derives from them) are byte-identical — the
/// parallel-training half of the parity guarantee.
std::vector<double> CheckTrainingWorkerParity(
    const Options& options, const workload::PiecewiseConstantIntensity& base) {
  stats::Rng trace_rng(options.seed);
  auto trace = workload::MakeTraceFromIntensity(
      &trace_rng, base, stats::DurationDistribution::Exponential(15.0));
  RS_CHECK(trace.ok()) << trace.status().ToString();

  std::vector<double> train_seconds;
  std::vector<double> first_forecast;
  std::vector<sim::ScalingAction> first_actions;
  for (std::size_t workers : options.workers) {
    common::ThreadPool pool(workers);
    core::PipelineOptions pipeline;
    pipeline.dt = 60.0;
    pipeline.forecast_horizon = 3600.0;
    pipeline.training_pool = &pool;
    Stopwatch watch;
    auto trained = core::TrainRobustScaler(*trace, pipeline);
    train_seconds.push_back(watch.ElapsedSeconds());
    RS_CHECK(trained.ok()) << trained.status().ToString();

    auto run = DriveRounds(trained->forecast,
                           core::ScalerVariant::kHittingProbability, 200, 10,
                           options.seed, 1.0);
    if (first_forecast.empty()) {
      first_forecast = trained->forecast.rates();
      first_actions = std::move(run.actions);
    } else {
      RS_CHECK(first_forecast == trained->forecast.rates())
          << "training with " << workers
          << " workers produced a different forecast";
      RunResult reference;
      reference.actions = first_actions;
      CheckActionParity(reference, run, "training-worker parity");
    }
  }
  return train_seconds;
}

void WriteJson(const Options& options, const std::vector<BenchRow>& rows,
               const std::vector<double>& train_seconds) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"plan_hot_path\",\n"
      << "  \"rounds\": " << options.rounds << ",\n"
      << "  \"qps\": " << options.qps << ",\n"
      << "  \"seed\": " << options.seed << ",\n"
      << "  \"parity\": \"ok\",\n"
      << "  \"training_worker_parity\": {\"workers\": [";
  for (std::size_t i = 0; i < options.workers.size(); ++i) {
    out << options.workers[i] << (i + 1 < options.workers.size() ? ", " : "");
  }
  out << "], \"identical\": true, \"train_s\": [";
  for (std::size_t i = 0; i < train_seconds.size(); ++i) {
    out << train_seconds[i] << (i + 1 < train_seconds.size() ? ", " : "");
  }
  out << "]},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"variant\": \"" << row.variant << "\", \"mc\": " << row.mc
        << ", \"decisions\": " << row.decisions
        << ", \"optimized_s\": " << row.opt_s
        << ", \"reference_s\": " << row.ref_s
        << ", \"optimized_decisions_per_s\": " << row.opt_decisions_per_s
        << ", \"reference_decisions_per_s\": " << row.ref_decisions_per_s
        << ", \"optimized_ns_per_decision\": " << row.opt_ns_per_decision
        << ", \"reference_ns_per_decision\": " << row.ref_ns_per_decision
        << ", \"speedup\": " << row.speedup << ", \"plan_workers\": [";
    for (std::size_t w = 0; w < row.plan_workers.size(); ++w) {
      const auto& point = row.plan_workers[w];
      out << "{\"workers\": " << point.workers
          << ", \"decisions_per_s\": " << point.decisions_per_s
          << ", \"speedup_vs_serial\": " << point.speedup_vs_serial << "}"
          << (w + 1 < row.plan_workers.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const double planning_interval = 1.0;
  const double horizon = std::max(
      86400.0, (static_cast<double>(options.rounds) + 2.0) * planning_interval);
  const auto forecast = MakeForecast(options.qps, horizon);

  std::printf("plan_hot_path: %zu rounds/config, ~%.1f QPS, seed %llu\n\n",
              options.rounds, options.qps,
              static_cast<unsigned long long>(options.seed));
  std::printf("%-8s %8s %10s %14s %14s %12s %12s %9s\n", "variant", "R",
              "decisions", "opt_dec_per_s", "ref_dec_per_s", "opt_ns_dec",
              "ref_ns_dec", "speedup");

  std::vector<BenchRow> rows;
  for (auto variant : options.variants) {
    for (std::size_t mc : options.mc) {
      common::SetReferenceKernels(true);
      const auto reference = DriveRounds(forecast, variant, mc, options.rounds,
                                         options.seed, planning_interval);
      common::SetReferenceKernels(false);
      const auto optimized = DriveRounds(forecast, variant, mc, options.rounds,
                                         options.seed, planning_interval);
      // The parity self-check: same seed, same schedule — the two kernel
      // paths must have emitted byte-identical action sequences.
      CheckActionParity(reference, optimized, VariantKey(variant));
      RS_CHECK(optimized.decisions > 0) << "no decisions committed";

      BenchRow row;
      row.variant = VariantKey(variant);
      row.mc = mc;
      row.decisions = optimized.decisions;
      row.opt_s = optimized.seconds;
      row.ref_s = reference.seconds;
      const auto dec = static_cast<double>(optimized.decisions);
      row.opt_decisions_per_s = dec / optimized.seconds;
      row.ref_decisions_per_s = dec / reference.seconds;
      row.opt_ns_per_decision = optimized.seconds / dec * 1e9;
      row.ref_ns_per_decision = reference.seconds / dec * 1e9;
      row.speedup = reference.seconds / optimized.seconds;

      std::printf("%-8s %8zu %10zu %14.0f %14.0f %12.0f %12.0f %8.2fx\n",
                  row.variant.c_str(), row.mc, row.decisions,
                  row.opt_decisions_per_s, row.ref_decisions_per_s,
                  row.opt_ns_per_decision, row.ref_ns_per_decision,
                  row.speedup);

      // Intra-plan sharding sweep: identical schedule per worker count,
      // byte-identical actions enforced against the reference run (and
      // therefore against every other worker count).
      for (std::size_t plan_workers : options.plan_workers) {
        common::ThreadPool plan_pool(plan_workers);
        const auto sharded =
            DriveRounds(forecast, variant, mc, options.rounds, options.seed,
                        planning_interval, &plan_pool);
        CheckActionParity(reference, sharded, "plan-workers parity");
        ParallelPoint point;
        point.workers = plan_workers;
        point.seconds = sharded.seconds;
        point.decisions_per_s = dec / sharded.seconds;
        point.speedup_vs_serial = optimized.seconds / sharded.seconds;
        row.plan_workers.push_back(point);
        std::printf("  plan-workers=%-2zu %*s%14.0f %29.2fx vs serial\n",
                    plan_workers, 14, "", point.decisions_per_s,
                    point.speedup_vs_serial);
      }
      rows.push_back(row);
    }
  }

  const auto train_seconds = CheckTrainingWorkerParity(options, forecast);
  std::printf("\nparity: reference vs optimized kernels identical; actions "
              "byte-identical across plan-workers {");
  for (std::size_t i = 0; i < options.plan_workers.size(); ++i) {
    std::printf("%zu%s", options.plan_workers[i],
                i + 1 < options.plan_workers.size() ? ", " : "");
  }
  std::printf("}; training byte-identical across workers {");
  for (std::size_t i = 0; i < options.workers.size(); ++i) {
    std::printf("%zu%s", options.workers[i],
                i + 1 < options.workers.size() ? ", " : "");
  }
  std::printf("}\n");

  if (!options.json_path.empty()) {
    WriteJson(options, rows, train_seconds);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
