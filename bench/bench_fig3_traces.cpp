// Fig. 3: QPS series of the three traces at Δt = 60 s.
//
// The paper plots the raw series; a console harness prints summary
// statistics plus a coarse sparkline per trace so the shapes (noisy weekly
// CRS, spiky Google, spiky-plus-burst Alibaba) are visible in text.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/timeseries/aggregate.hpp"

namespace {

void Describe(const char* name, const rs::workload::Trace& trace,
              double sparkline_bin) {
  auto series = rs::ts::AggregateEvents(trace.ArrivalTimes(), 60.0,
                                        trace.horizon());
  RS_CHECK(series.ok());
  const auto qps = series->ToQps();
  double max_qps = 0.0, mean_qps = 0.0;
  for (double q : qps) {
    max_qps = std::max(max_qps, q);
    mean_qps += q;
  }
  mean_qps /= static_cast<double>(qps.size());
  std::printf("%-10s queries=%-8zu horizon=%6.1f h   mean QPS=%.4f  max QPS=%.3f\n",
              name, trace.size(), trace.horizon() / 3600.0, mean_qps, max_qps);

  // Sparkline: one character per `sparkline_bin` seconds.
  auto coarse = rs::ts::AggregateEvents(trace.ArrivalTimes(), sparkline_bin,
                                        trace.horizon());
  RS_CHECK(coarse.ok());
  double peak = 1e-12;
  for (double c : coarse->counts) peak = std::max(peak, c);
  static const char kLevels[] = " .:-=+*#%@";
  std::printf("  [");
  for (double c : coarse->counts) {
    const int idx = static_cast<int>(9.0 * c / peak);
    std::printf("%c", kLevels[std::clamp(idx, 0, 9)]);
  }
  std::printf("]\n\n");
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 3 — QPS series of the three traces (dt = 60 s)");

  auto crs = rs::workload::MakeCrsLikeTrace();
  auto google = rs::workload::MakeGoogleLikeTrace();
  auto alibaba = rs::workload::MakeAlibabaLikeTrace();
  RS_CHECK(crs.ok() && google.ok() && alibaba.ok());

  Describe("CRS", crs->trace, 4.0 * 3600.0);       // 1 char = 4 h.
  Describe("Google", google->trace, 600.0);        // 1 char = 10 min.
  Describe("Alibaba", alibaba->trace, 3600.0);     // 1 char = 1 h.

  std::printf("Expected shapes (paper Fig. 3): CRS noisy with weekly/daily\n"
              "structure; Google recurrent spikes; Alibaba recurrent spikes\n"
              "plus one anomalous burst in the middle of day 4.\n");
  return 0;
}
