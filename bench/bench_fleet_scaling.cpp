// Multi-tenant serving throughput: tenants × worker threads.
//
// Builds a ScalerFleet of T per-tenant models (phase-shifted sinusoidal
// NHPP workloads), drives the merged arrival stream plus periodic PlanAll
// batches through it once per worker-thread count, and reports the serving
// wall time, planning throughput, and speedup over the single-worker run.
// Every run must produce byte-identical per-tenant action sequences — the
// fleet's parity guarantee — so the bench double-checks its own numbers by
// comparing each run's action logs against the first run's.
//
// Usage:
//   bench_fleet_scaling [--tenants=8] [--threads=1,2,4] [--cycles=2]
//                       [--qps=2] [--mc=200] [--plan-workers=0,1]
//                       [--strategy=robust_hp:target=0.9]
//                       [--snapshot-interval=0] [--json=BENCH_fleet.json]
//
// --plan-workers sweeps intra-plan Monte Carlo sharding: 0 = tenant-level
// batching only (each tenant's Plan runs serially on its worker), 1 = each
// tenant's plan shards feed the *same* fleet pool as the tenant batching
// (one work queue — a 1-tenant fleet then saturates a many-thread pool
// too). Every (threads, plan-workers) run must emit byte-identical
// per-tenant actions; the bench aborts on any divergence.
//
// --snapshot-interval=N (seconds of serving time; 0 = off) additionally
// calls SaveFleet every N seconds and reports the cumulative snapshot wall
// time and the last snapshot's size (snapshot_ms / snapshot_bytes in the
// JSON — informational, not gated, so enabling it never churns the perf
// baseline).
//
// Per-tick planning work scales with traffic (~qps·Δ Monte-Carlo
// decisions per tenant per tick), so --qps and --mc set the grain of the
// parallelizable work. The defaults finish in a few seconds; CI's
// perf-smoke job runs tiny sizes and uploads the JSON (see
// .github/workflows/ci.yml and EXPERIMENTS.md).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"

namespace {

using namespace rs;

struct Options {
  std::size_t tenants = 8;
  std::vector<std::size_t> threads = {1, 2, 4};
  double cycles = 2.0;        ///< Serving window, in 600 s workload cycles.
  double qps = 2.0;           ///< Mean per-tenant arrival rate (scales work).
  std::size_t mc_samples = 200;
  /// Intra-plan sharding settings to sweep: 0 = off, nonzero = shards share
  /// the fleet pool.
  std::vector<std::size_t> plan_workers = {0, 1};
  std::string strategy = "robust_hp:target=0.9";
  /// Serving-time seconds between SaveFleet calls; 0 disables snapshotting.
  double snapshot_interval = 0.0;
  std::string json_path;      ///< Empty: stdout table only.
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--tenants=", 0) == 0) {
      options.tenants = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads.clear();
      const std::string list = value();
      for (std::size_t pos = 0; pos <= list.size();) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos) end = list.size();
        const std::string token = list.substr(pos, end - pos);
        if (token.empty() ||
            token.find_first_not_of("0123456789") != std::string::npos) {
          std::fprintf(stderr, "bad --threads list: %s\n", list.c_str());
          std::exit(2);
        }
        options.threads.push_back(
            static_cast<std::size_t>(std::stoul(token)));
        pos = end + 1;
      }
    } else if (arg.rfind("--cycles=", 0) == 0) {
      options.cycles = std::stod(value());
    } else if (arg.rfind("--qps=", 0) == 0) {
      options.qps = std::stod(value());
    } else if (arg.rfind("--mc=", 0) == 0) {
      options.mc_samples = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--plan-workers=", 0) == 0) {
      options.plan_workers = bench::ParseSizeList(value());
    } else if (arg.rfind("--strategy=", 0) == 0) {
      options.strategy = value();
    } else if (arg.rfind("--snapshot-interval=", 0) == 0) {
      options.snapshot_interval = std::stod(value());
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(options.tenants > 0);
  RS_CHECK(!options.threads.empty());
  RS_CHECK(options.cycles > 0.0);
  RS_CHECK(options.qps > 0.0);
  return options;
}

struct TenantWorkload {
  workload::Trace train;
  workload::Trace test;
};

/// Arrival event in the merged serving stream.
struct Event {
  double t;
  std::size_t tenant;
};

struct RunResult {
  std::size_t threads = 0;
  bool plan_sharding = false;
  double train_s = 0.0;
  double serve_s = 0.0;
  double plan_s = 0.0;     ///< Of serve_s: inside PlanAll batches.
  double observe_s = 0.0;  ///< Of serve_s: inside (serial) Observe calls.
  std::size_t plan_batches = 0;
  std::size_t planning_rounds = 0;  ///< Strategy callbacks, all tenants.
  std::size_t observes = 0;
  // --snapshot-interval metrics (all zero when snapshotting is off).
  double snapshot_s = 0.0;          ///< Cumulative SaveFleet wall time.
  std::size_t snapshot_bytes = 0;   ///< Size of the last fleet snapshot.
  std::size_t snapshots = 0;
  std::vector<std::vector<sim::ScalingAction>> logs;  ///< Per tenant.
};

TenantWorkload MakeTenantWorkload(std::size_t tenant, double serve_cycles,
                                  double qps) {
  const double period_s = 600.0, dt = 30.0;
  const double horizon = (6.0 + serve_cycles) * period_s;
  const double phase0 =
      static_cast<double>(tenant) / 7.3;  // Deterministic phase shift.
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(qps *
                    (1.0 + 0.6 * std::sin(2.0 * M_PI * (phase + phase0))));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(1000 + tenant);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  TenantWorkload w;
  auto [train, test] = trace.SplitAt(horizon - serve_cycles * period_s);
  w.train = std::move(train);
  w.test = std::move(test);
  return w;
}

RunResult RunOnce(const Options& options,
                  const std::vector<TenantWorkload>& workloads,
                  const std::vector<Event>& events, double serve_horizon,
                  std::size_t threads, bool plan_sharding) {
  RunResult run;
  run.threads = threads;
  run.plan_sharding = plan_sharding;

  auto spec = api::ParseStrategySpec(options.strategy);
  RS_CHECK(spec.ok()) << spec.status().ToString();

  std::vector<std::string> names;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    names.push_back("tenant-" + std::to_string(i));
  }
  Stopwatch train_watch;
  api::ScalerFleet fleet(threads);
  fleet.SetIntraPlanSharding(plan_sharding);
  for (std::size_t i = 0; i < options.tenants; ++i) {
    auto scaler = api::ScalerBuilder()
                      .WithTrace(workloads[i].train)
                      .WithBinWidth(30.0)
                      .WithForecastHorizon(serve_horizon)
                      .WithStrategy(*spec)
                      .WithPlanningInterval(2.0)
                      .WithMcSamples(options.mc_samples)
                      .Build();
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(fleet.Register(names[i], std::move(scaler).ValueOrDie()).ok());
    // Keep the full action log so the run's parity can be cross-checked.
    RS_CHECK(fleet.Find(names[i])
                 ->ConfigureHistoryRetention(sim::kUnboundedHistory)
                 .ok());
  }
  run.train_s = train_watch.ElapsedSeconds();

  // Poll at the planning interval (the documented serving cadence): each
  // tick's strategy decision then runs inside a PlanAll batch on the
  // worker pool, instead of being executed lazily by the next Observe()
  // on the caller thread.
  const double plan_every = 2.0;
  double next_plan = plan_every;
  double next_snapshot = options.snapshot_interval;
  Stopwatch serve_watch;
  Stopwatch phase_watch;
  const auto plan_batch = [&](double t) {
    phase_watch.Reset();
    for (const auto& plan : fleet.PlanAll(t)) {
      RS_CHECK(plan.status.ok())
          << plan.tenant << ": " << plan.status.ToString();
    }
    run.plan_s += phase_watch.ElapsedSeconds();
    ++run.plan_batches;
  };
  const auto maybe_snapshot = [&](double t) {
    if (options.snapshot_interval <= 0.0) return;
    while (next_snapshot <= t) {
      phase_watch.Reset();
      std::ostringstream sink;
      RS_CHECK(fleet.SaveFleet(sink).ok());
      run.snapshot_s += phase_watch.ElapsedSeconds();
      run.snapshot_bytes = sink.str().size();
      ++run.snapshots;
      next_snapshot += options.snapshot_interval;
    }
  };
  for (const auto& event : events) {
    while (next_plan <= event.t) {
      plan_batch(next_plan);
      next_plan += plan_every;
    }
    maybe_snapshot(event.t);
    phase_watch.Reset();
    auto outcome = fleet.Observe(names[event.tenant], event.t);
    RS_CHECK(outcome.ok()) << outcome.status().ToString();
    run.observe_s += phase_watch.ElapsedSeconds();
    ++run.observes;
  }
  plan_batch(serve_horizon);
  run.serve_s = serve_watch.ElapsedSeconds();

  const api::FleetSnapshot snap = fleet.Snapshot();
  run.planning_rounds = snap.planning_rounds;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    run.logs.push_back(fleet.Find(names[i])->ActionLog());
  }
  return run;
}

/// Byte-identical action-log comparison across two runs (the fleet parity
/// guarantee: worker count changes wall time, never actions).
void CheckParity(const RunResult& baseline, const RunResult& run) {
  RS_CHECK(baseline.logs.size() == run.logs.size());
  for (std::size_t i = 0; i < baseline.logs.size(); ++i) {
    const auto& a = baseline.logs[i];
    const auto& b = run.logs[i];
    RS_CHECK(a.size() == b.size())
        << "tenant " << i << ": " << a.size() << " vs " << b.size()
        << " actions (threads " << baseline.threads << " vs " << run.threads
        << ")";
    for (std::size_t k = 0; k < a.size(); ++k) {
      RS_CHECK(a[k].deletions == b[k].deletions) << "tenant " << i;
      RS_CHECK(a[k].creation_times == b[k].creation_times)
          << "tenant " << i << ", action " << k << " diverged between "
          << baseline.threads << " and " << run.threads << " threads";
    }
  }
}

void WriteJson(const Options& options, const std::vector<RunResult>& runs,
               std::size_t total_arrivals, double serve_horizon) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"fleet_scaling\",\n"
      << "  \"strategy\": \"" << options.strategy << "\",\n"
      << "  \"tenants\": " << options.tenants << ",\n"
      << "  \"arrivals\": " << total_arrivals << ",\n"
      << "  \"serve_horizon_s\": " << serve_horizon << ",\n"
      << "  \"mc_samples\": " << options.mc_samples << ",\n"
      << "  \"results\": [\n";
  const double base = runs.front().serve_s;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    out << "    {\"threads\": " << run.threads
        << ", \"plan_sharding\": " << (run.plan_sharding ? "true" : "false")
        << ", \"train_s\": " << run.train_s
        << ", \"serve_s\": " << run.serve_s
        << ", \"plan_s\": " << run.plan_s
        << ", \"observe_s\": " << run.observe_s
        << ", \"plan_batches\": " << run.plan_batches
        << ", \"planning_rounds\": " << run.planning_rounds
        << ", \"plans_per_s\": "
        << static_cast<double>(run.planning_rounds) / run.serve_s;
    if (options.snapshot_interval > 0.0) {
      // Reported, not gated: the perf baseline predates these fields and
      // bench_gate.py only compares keys present in the baseline rows.
      out << ", \"snapshot_ms\": " << 1000.0 * run.snapshot_s
          << ", \"snapshot_bytes\": " << run.snapshot_bytes
          << ", \"snapshots\": " << run.snapshots;
    }
    out << ", \"speedup\": " << base / run.serve_s << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  std::vector<TenantWorkload> workloads;
  std::vector<Event> events;
  double serve_horizon = 0.0;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    workloads.push_back(MakeTenantWorkload(i, options.cycles, options.qps));
    for (const auto& q : workloads[i].test.queries()) {
      events.push_back({q.arrival_time, i});
    }
    serve_horizon = std::max(serve_horizon, workloads[i].test.horizon());
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });
  std::printf("fleet_scaling: %zu tenants, %zu arrivals over %.0f s, "
              "strategy %s, R=%zu, ~%.1f QPS/tenant\n\n",
              options.tenants, events.size(), serve_horizon,
              options.strategy.c_str(), options.mc_samples, options.qps);

  std::vector<RunResult> runs;
  std::printf("%8s %6s %10s %10s %10s %10s %14s %10s\n", "threads", "shard",
              "train_s", "serve_s", "plan_s", "observe_s", "plans_per_s",
              "speedup");
  for (std::size_t threads : options.threads) {
    for (std::size_t plan_workers : options.plan_workers) {
      runs.push_back(RunOnce(options, workloads, events, serve_horizon,
                             threads, plan_workers > 0));
      const auto& run = runs.back();
      CheckParity(runs.front(), run);
      std::printf("%8zu %6s %10.3f %10.3f %10.3f %10.3f %14.0f %10.2fx\n",
                  run.threads, run.plan_sharding ? "on" : "off", run.train_s,
                  run.serve_s, run.plan_s, run.observe_s,
                  static_cast<double>(run.planning_rounds) / run.serve_s,
                  runs.front().serve_s / run.serve_s);
    }
  }

  if (!options.json_path.empty()) {
    WriteJson(options, runs, events.size(), serve_horizon);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
