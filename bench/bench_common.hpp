/// \file bench_common.hpp
/// \brief Shared scaffolding for the per-figure/per-table bench harnesses:
///        the three paper trace scenarios with their train/test splits, a
///        one-call "train pipeline and replay strategy" runner, and row
///        printing. Every harness prints the same rows/series the paper's
///        corresponding figure or table reports (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/common/logging.hpp"

namespace rs::bench {

/// One paper trace scenario: a train/test split plus its pipeline knobs.
struct Scenario {
  std::string name;
  workload::Trace train;
  workload::Trace test;
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);
  double dt = 60.0;                   ///< Model bin width for this trace.
  std::size_t aggregate_factor = 1;   ///< Periodicity-detection aggregation.
  double reactive_cost = 0.0;         ///< Total cost of BP(B=0) on `test`.
};

/// RobustScaler planning interval used by the trace replays. The paper uses
/// Δ = 1 s; we default to 5 s to keep every bench binary in seconds (the
/// Fig. 10(d) harness sweeps Δ explicitly). Documented in EXPERIMENTS.md.
inline constexpr double kPlanningInterval = 5.0;

/// Monte Carlo samples per decision in trace replays (paper: 1000 for the
/// scalability study; decisions stabilize well before that).
inline constexpr std::size_t kMcSamples = 300;

inline sim::EngineOptions EngineFor(const Scenario& scenario,
                                    std::uint64_t seed = 20220414) {
  sim::EngineOptions opts;
  opts.pending = scenario.pending;
  opts.seed = seed;
  return opts;
}

inline sim::Metrics MustMetrics(const Result<sim::SimulationResult>& result) {
  RS_CHECK(result.ok()) << result.status().ToString();
  auto metrics = sim::ComputeMetrics(*result);
  RS_CHECK(metrics.ok()) << metrics.status().ToString();
  return *metrics;
}

/// Replays `strategy` on the scenario's test trace.
inline sim::Metrics RunStrategy(const Scenario& scenario,
                                sim::Autoscaler* strategy,
                                std::uint64_t seed = 20220414) {
  return MustMetrics(sim::Simulate(scenario.test, strategy,
                                   EngineFor(scenario, seed)));
}

/// Registry lookup that aborts on configuration errors (bench harnesses
/// treat a bad spec as a programming bug, not a recoverable condition).
inline std::unique_ptr<sim::Autoscaler> MakeNamedStrategy(
    const api::StrategySpec& spec, const api::StrategyContext& context = {}) {
  auto strategy = api::MakeStrategy(spec, context);
  RS_CHECK(strategy.ok()) << strategy.status().ToString();
  return std::move(strategy).ValueOrDie();
}

/// Fills scenario.reactive_cost with the BP(B=0) reference (paper metric
/// "relative cost"). Selected through the registry like every other
/// strategy in the harnesses.
inline void ComputeReactiveReference(Scenario* scenario) {
  auto reactive = MakeNamedStrategy({.name = "backup_pool", .params = {}});
  scenario->reactive_cost = RunStrategy(*scenario, reactive.get()).total_cost;
}

inline Scenario MakeCrsScenario() {
  auto synth = workload::MakeCrsLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "CRS";
  // Paper split: first 3 weeks train, last week test.
  auto split = synth->trace.SplitAt(3.0 * 7.0 * 86400.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  s.dt = 600.0;  // 10-min bins keep the weekly/daily band tractable.
  s.aggregate_factor = 6;
  ComputeReactiveReference(&s);
  return s;
}

inline Scenario MakeGoogleScenario() {
  auto synth = workload::MakeGoogleLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "Google";
  // Paper split: first 18 h train, last 6 h test.
  auto split = synth->trace.SplitAt(18.0 * 3600.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  s.dt = 60.0;
  s.aggregate_factor = 5;
  ComputeReactiveReference(&s);
  return s;
}

inline Scenario MakeAlibabaScenario() {
  auto synth = workload::MakeAlibabaLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "Alibaba";
  // Paper split: first 4 days train, last day test.
  auto split = synth->trace.SplitAt(4.0 * 86400.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  // 5-min bins: the daily period is 288 bins (sharp ACF peak) and the fit
  // stays small (T = 1152 for the 4 training days).
  s.dt = 300.0;
  s.aggregate_factor = 1;
  ComputeReactiveReference(&s);
  return s;
}

/// Trains the RobustScaler pipeline on the scenario's training window (the
/// facade's shared-training path: one fit feeds every strategy sweep).
inline core::TrainedPipeline TrainOn(const Scenario& scenario) {
  core::PipelineOptions options;
  options.dt = scenario.dt;
  options.periodicity.aggregate_factor = scenario.aggregate_factor;
  options.forecast_horizon = scenario.test.horizon();
  auto trained = api::TrainPipeline(scenario.train, options);
  RS_CHECK(trained.ok()) << trained.status().ToString();
  return std::move(trained).ValueOrDie();
}

/// Builds a RobustScaler policy from a trained pipeline for one variant and
/// target through the strategy registry — the single place that interprets
/// target semantics (HP → hitting probability 1−α, RT → waiting-time budget
/// d − µs in seconds, cost → idle budget in seconds).
inline std::unique_ptr<sim::Autoscaler> MakeVariantPolicy(
    const core::TrainedPipeline& trained, const Scenario& scenario,
    core::ScalerVariant variant, double target,
    double planning_interval = kPlanningInterval) {
  api::StrategyContext context;
  context.forecast = &trained.forecast;
  context.pending = scenario.pending;
  context.mc_samples = kMcSamples;
  context.planning_interval = planning_interval;
  auto policy = api::MakeStrategy(
      {.name = api::StrategyNameFor(variant), .params = {{"target", target}}},
      context);
  RS_CHECK(policy.ok()) << policy.status().ToString();
  return std::move(policy).ValueOrDie();
}

/// Parses a comma-separated list of non-negative integers (e.g. a
/// `--workers=0,1,8` value), aborting with the offending token on anything
/// malformed — bench arguments are programmer input, not user data.
inline std::vector<std::size_t> ParseSizeList(const std::string& list) {
  std::vector<std::size_t> out;
  for (std::size_t pos = 0; pos <= list.size();) {
    std::size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string token = list.substr(pos, end - pos);
    RS_CHECK(!token.empty() &&
             token.find_first_not_of("0123456789") == std::string::npos)
        << "bad list token: '" << token << "' in '" << list << "'";
    out.push_back(static_cast<std::size_t>(std::stoul(token)));
    pos = end + 1;
  }
  return out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintParetoHeader() {
  std::printf("%-22s %12s %10s %10s %10s\n", "strategy", "parameter",
              "hit_rate", "rt_avg", "rel_cost");
}

inline void PrintParetoRow(const std::string& strategy, double parameter,
                           const sim::Metrics& m, double reactive_cost) {
  std::printf("%-22s %12.4g %10.4f %10.2f %10.3f\n", strategy.c_str(),
              parameter, m.hit_rate, m.rt_avg,
              sim::RelativeCost(m, reactive_cost));
}

}  // namespace rs::bench
