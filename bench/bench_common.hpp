/// \file bench_common.hpp
/// \brief Shared scaffolding for the per-figure/per-table bench harnesses:
///        the three paper trace scenarios with their train/test splits, a
///        one-call "train pipeline and replay strategy" runner, and row
///        printing. Every harness prints the same rows/series the paper's
///        corresponding figure or table reports (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "rs/baselines/adaptive_backup_pool.hpp"
#include "rs/common/logging.hpp"
#include "rs/baselines/backup_pool.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/workload/synthetic.hpp"

namespace rs::bench {

/// One paper trace scenario: a train/test split plus its pipeline knobs.
struct Scenario {
  std::string name;
  workload::Trace train;
  workload::Trace test;
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);
  double dt = 60.0;                   ///< Model bin width for this trace.
  std::size_t aggregate_factor = 1;   ///< Periodicity-detection aggregation.
  double reactive_cost = 0.0;         ///< Total cost of BP(B=0) on `test`.
};

/// RobustScaler planning interval used by the trace replays. The paper uses
/// Δ = 1 s; we default to 5 s to keep every bench binary in seconds (the
/// Fig. 10(d) harness sweeps Δ explicitly). Documented in EXPERIMENTS.md.
inline constexpr double kPlanningInterval = 5.0;

/// Monte Carlo samples per decision in trace replays (paper: 1000 for the
/// scalability study; decisions stabilize well before that).
inline constexpr std::size_t kMcSamples = 300;

inline sim::EngineOptions EngineFor(const Scenario& scenario,
                                    std::uint64_t seed = 20220414) {
  sim::EngineOptions opts;
  opts.pending = scenario.pending;
  opts.seed = seed;
  return opts;
}

inline sim::Metrics MustMetrics(const Result<sim::SimulationResult>& result) {
  RS_CHECK(result.ok()) << result.status().ToString();
  auto metrics = sim::ComputeMetrics(*result);
  RS_CHECK(metrics.ok()) << metrics.status().ToString();
  return *metrics;
}

/// Replays `strategy` on the scenario's test trace.
inline sim::Metrics RunStrategy(const Scenario& scenario,
                                sim::Autoscaler* strategy,
                                std::uint64_t seed = 20220414) {
  return MustMetrics(sim::Simulate(scenario.test, strategy,
                                   EngineFor(scenario, seed)));
}

/// Fills scenario.reactive_cost with the BP(B=0) reference (paper metric
/// "relative cost").
inline void ComputeReactiveReference(Scenario* scenario) {
  baseline::BackupPool reactive(0);
  scenario->reactive_cost = RunStrategy(*scenario, &reactive).total_cost;
}

inline Scenario MakeCrsScenario() {
  auto synth = workload::MakeCrsLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "CRS";
  // Paper split: first 3 weeks train, last week test.
  auto split = synth->trace.SplitAt(3.0 * 7.0 * 86400.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  s.dt = 600.0;  // 10-min bins keep the weekly/daily band tractable.
  s.aggregate_factor = 6;
  ComputeReactiveReference(&s);
  return s;
}

inline Scenario MakeGoogleScenario() {
  auto synth = workload::MakeGoogleLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "Google";
  // Paper split: first 18 h train, last 6 h test.
  auto split = synth->trace.SplitAt(18.0 * 3600.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  s.dt = 60.0;
  s.aggregate_factor = 5;
  ComputeReactiveReference(&s);
  return s;
}

inline Scenario MakeAlibabaScenario() {
  auto synth = workload::MakeAlibabaLikeTrace();
  RS_CHECK(synth.ok()) << synth.status().ToString();
  Scenario s;
  s.name = "Alibaba";
  // Paper split: first 4 days train, last day test.
  auto split = synth->trace.SplitAt(4.0 * 86400.0);
  s.train = std::move(split.first);
  s.test = std::move(split.second);
  s.pending = synth->pending;
  // 5-min bins: the daily period is 288 bins (sharp ACF peak) and the fit
  // stays small (T = 1152 for the 4 training days).
  s.dt = 300.0;
  s.aggregate_factor = 1;
  ComputeReactiveReference(&s);
  return s;
}

/// Trains the RobustScaler pipeline on the scenario's training window.
inline core::TrainedPipeline TrainOn(const Scenario& scenario) {
  core::PipelineOptions options;
  options.dt = scenario.dt;
  options.periodicity.aggregate_factor = scenario.aggregate_factor;
  options.forecast_horizon = scenario.test.horizon();
  auto trained = core::TrainRobustScaler(scenario.train, options);
  RS_CHECK(trained.ok()) << trained.status().ToString();
  return std::move(trained).ValueOrDie();
}

/// Builds a RobustScaler policy from a trained pipeline for one variant and
/// target. Target meaning: HP → target hitting probability (1−α), RT →
/// waiting-time budget d − µs in seconds, cost → idle budget in seconds.
inline std::unique_ptr<core::RobustScalerPolicy> MakeVariantPolicy(
    const core::TrainedPipeline& trained, const Scenario& scenario,
    core::ScalerVariant variant, double target,
    double planning_interval = kPlanningInterval) {
  core::SequentialScalerOptions opts;
  opts.variant = variant;
  opts.mc_samples = kMcSamples;
  opts.planning_interval = planning_interval;
  switch (variant) {
    case core::ScalerVariant::kHittingProbability:
      opts.alpha = 1.0 - target;
      break;
    case core::ScalerVariant::kResponseTime:
      opts.rt_excess = target;
      break;
    case core::ScalerVariant::kCost:
      opts.idle_budget = target;
      break;
  }
  return core::MakeRobustScalerPolicy(trained, scenario.pending, opts);
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintParetoHeader() {
  std::printf("%-22s %12s %10s %10s %10s\n", "strategy", "parameter",
              "hit_rate", "rt_avg", "rel_cost");
}

inline void PrintParetoRow(const std::string& strategy, double parameter,
                           const sim::Metrics& m, double reactive_cost) {
  std::printf("%-22s %12.4g %10.4f %10.2f %10.3f\n", strategy.c_str(),
              parameter, m.hit_rate, m.rt_avg,
              sim::RelativeCost(m, reactive_cost));
}

}  // namespace rs::bench
