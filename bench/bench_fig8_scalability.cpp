// Fig. 8: runtime of computing scaling decisions (solving (3), (5), (7))
// versus QPS, on the paper's simulated high-QPS intensity
//   λ(t) = peak · 4^40 u^40 (1-u)^40 + 0.001,  u = (t mod 3600)/3600,
// with τ = 13 s fixed, R = 1000 Monte Carlo samples, decisions updated for
// a Δ = 5 s window. One timing sample per planning round across the whole
// intensity range; the paper's scatter shows runtime growing linearly with
// QPS and staying in single-digit seconds even at QPS 10^4.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/core/arrival_predictor.hpp"
#include "rs/core/decision.hpp"
#include "rs/core/kappa.hpp"
#include "rs/workload/intensity.hpp"

namespace {

using rs::core::McSamples;

/// Times one full decision update at local intensity `lambda`: sample the
/// upcoming-arrival matrix for the committed look-ahead depth κ+m and solve
/// the per-query problem for each index — exactly the per-round work of the
/// sequential scaler.
double TimeDecisionRound(double lambda, rs::core::ScalerVariant variant,
                         double target, std::size_t mc_samples,
                         double delta, std::size_t* depth_out) {
  const double tau = 13.0;
  auto intensity = *rs::workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(64, lambda), 60.0);
  auto pending = rs::stats::DurationDistribution::Deterministic(tau);
  rs::stats::Rng rng(1234 + static_cast<std::uint64_t>(lambda * 100));

  auto kappa = rs::core::ComputeKappaBinarySearch(0.1, lambda, tau, 2000000);
  RS_CHECK(kappa.ok());
  const auto m = static_cast<std::size_t>(std::max(1.0, lambda * delta));
  const std::size_t depth = *kappa + m;
  *depth_out = depth;

  rs::Stopwatch watch;
  rs::core::ArrivalPathSampler sampler(&intensity, 0.0, mc_samples, &rng);
  McSamples samples;
  samples.tau.assign(mc_samples, tau);
  // The scaler's steady-state round replans the m freshest indices after
  // skipping the κ already-committed ones in a single Gamma jump.
  sampler.Skip(depth - m);
  for (std::size_t j = 0; j < m; ++j) {
    auto xi = sampler.NextQuery();
    RS_CHECK(xi.ok());
    samples.xi = std::move(*xi);
    rs::Result<rs::core::Decision> d = rs::Status::OK();
    switch (variant) {
      case rs::core::ScalerVariant::kHittingProbability:
        d = rs::core::SolveHpConstrained(samples, 1.0 - target);
        break;
      case rs::core::ScalerVariant::kResponseTime:
        d = rs::core::SolveRtConstrained(samples, target);
        break;
      case rs::core::ScalerVariant::kCost:
        d = rs::core::SolveCostConstrained(samples, target);
        break;
    }
    RS_CHECK(d.ok());
  }
  return watch.ElapsedSeconds();
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 8 — decision-update runtime vs QPS (R = 1000, Δ = 5 s)");

  const std::size_t mc = 1000;
  const double delta = 5.0;
  std::printf("%-10s %22s %10s %12s\n", "QPS", "variant", "depth",
              "runtime_s");
  // The paper's intensity sweeps 0.001 … 10^4 within each hour-long cycle;
  // we time decision rounds at representative QPS levels across that range.
  const std::vector<double> qps_levels{0.01, 0.1, 1.0, 10.0, 50.0,
                                       100.0, 500.0, 1000.0, 5000.0, 10000.0};
  struct VariantSpec {
    rs::core::ScalerVariant variant;
    const char* name;
    double target;
  };
  const VariantSpec variants[] = {
      {rs::core::ScalerVariant::kHittingProbability, "RobustScaler-HP", 0.9},
      {rs::core::ScalerVariant::kResponseTime, "RobustScaler-RT", 1.0},
      {rs::core::ScalerVariant::kCost, "RobustScaler-cost", 2.0},
  };
  for (double qps : qps_levels) {
    for (const auto& spec : variants) {
      std::size_t depth = 0;
      const double seconds =
          TimeDecisionRound(qps, spec.variant, spec.target, mc, delta, &depth);
      std::printf("%-10.4g %22s %10zu %12.4f\n", qps, spec.name, depth,
                  seconds);
    }
  }
  std::printf("\nExpected (paper Fig. 8): runtime grows ~linearly in QPS (the\n"
              "O(QPS·R·logR) analysis of Section VI-B) and remains in seconds\n"
              "even at QPS in the thousands.\n");
  return 0;
}
