// Chaos storm over a production-shaped fleet: drives the bench_replay-style
// Azure-Functions workload (heavy-tailed per-tenant rates, diurnal cycle,
// burst windows, cloned archetype models) with a seeded rs::fault storm
// installed over the whole injection-site catalogue — plan boundaries and
// observes fail or throw, forced retrains die mid-refit, snapshot writes
// and renames are killed — and measures what the degradation machinery
// guarantees under fire:
//
//   availability        — fraction of plan boundaries served (real plan or
//                         last-good fallback; the contract is >= 99%, and
//                         the bench aborts below it);
//   torn_plans          — fallback boundaries that leaked a non-empty
//                         action (must be 0: a failed boundary holds the
//                         last-good plan, it never half-applies a new one);
//   fallback_fraction   — how much of the fleet ran degraded (deterministic
//                         given the storm seed, so the gate catches the
//                         breaker logic drifting);
//   recovered_fraction  — tenants back to HEALTHY after the storm lifts and
//                         a calm window lets half-open probes run.
//
// Every thread count re-runs the identical session and the bench aborts
// unless the action streams, degradation flags, per-tenant health counters,
// and fired-fault totals are byte-identical across worker counts — the
// chaos replay guarantee (same seed → same storm → same serving history,
// workers are a wall-time knob only). A final snapshot save/load round-trip
// checks that storms never leave an unloadable state file behind.
//
// Gated metrics (tools/bench_gate.py, "chaos"): availability,
// recovered_fraction (higher is better), fallback_fraction (lower is
// better). All three are deterministic given the seed; absolute
// arrivals/sec are reported, gated only with --gate-absolute.
//
// Usage:
//   bench_chaos [--tenants=100] [--target-arrivals=200000]
//               [--threads=0,1,8] [--serve-s=1800] [--plan-every=60]
//               [--plan-interval=10] [--mc=20] [--archetypes=4]
//               [--storm-seed=20220414] [--fire-prob=0.05]
//               [--calm-batches=30] [--save-every=10] [--retrain-every=7]
//               [--state-out=chaos_fleet.rsnp] [--json=BENCH_chaos.json]
//
// CI's perf-smoke invocation is in .github/workflows/ci.yml; the committed
// baseline lives at bench/baselines/BENCH_chaos.baseline.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/fault/fault.hpp"
#include "rs/wal/wal.hpp"

namespace {

using namespace rs;

/// Rate-curve bin width for the synthesized intensities (also the cloned
/// archetypes' model bin width and the freshness refit bin width).
constexpr double kBinS = 30.0;

/// Training window of the archetype models; serving starts at this time.
constexpr double kTrainS = 3600.0;

struct Options {
  std::size_t tenants = 100;
  double target_arrivals = 2e5;  ///< Expected total; actual is Poisson.
  std::vector<std::size_t> threads = {0, 1, 8};
  double serve_s = 1800.0;      ///< Storm window length.
  double plan_every = 60.0;     ///< PlanAll batch cadence (seconds).
  double plan_interval = 10.0;  ///< Per-tenant planning interval Δ.
  std::size_t mc_samples = 20;
  std::size_t archetypes = 4;        ///< Distinct trained models to clone.
  std::uint64_t storm_seed = 20220414;
  double fire_probability = 0.05;    ///< Per-hit fault firing probability.
  std::size_t calm_batches = 30;     ///< Post-storm recovery boundaries.
  std::size_t save_every = 10;       ///< Batches between snapshot attempts.
  std::size_t retrain_every = 7;     ///< Batches between forced retrains.
  std::string state_out = "chaos_fleet.rsnp";
  std::string json_path;  ///< Empty: stdout table only.
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--tenants=", 0) == 0) {
      options.tenants = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--target-arrivals=", 0) == 0) {
      options.target_arrivals = std::stod(value());
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = bench::ParseSizeList(value());
    } else if (arg.rfind("--serve-s=", 0) == 0) {
      options.serve_s = std::stod(value());
    } else if (arg.rfind("--plan-every=", 0) == 0) {
      options.plan_every = std::stod(value());
    } else if (arg.rfind("--plan-interval=", 0) == 0) {
      options.plan_interval = std::stod(value());
    } else if (arg.rfind("--mc=", 0) == 0) {
      options.mc_samples = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--archetypes=", 0) == 0) {
      options.archetypes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--storm-seed=", 0) == 0) {
      options.storm_seed = std::stoull(value());
    } else if (arg.rfind("--fire-prob=", 0) == 0) {
      options.fire_probability = std::stod(value());
    } else if (arg.rfind("--calm-batches=", 0) == 0) {
      options.calm_batches = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--save-every=", 0) == 0) {
      options.save_every = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--retrain-every=", 0) == 0) {
      options.retrain_every = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--state-out=", 0) == 0) {
      options.state_out = value();
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(options.tenants > 0);
  RS_CHECK(options.target_arrivals > 0.0);
  RS_CHECK(!options.threads.empty());
  RS_CHECK(options.serve_s > 300.0) << "--serve-s too short for bursts";
  RS_CHECK(options.plan_every > 0.0 && options.plan_interval > 0.0);
  RS_CHECK(options.archetypes > 0 && options.archetypes <= options.tenants);
  RS_CHECK(options.fire_probability > 0.0 && options.fire_probability < 1.0);
  RS_CHECK(!options.state_out.empty());
  return options;
}

/// Arrival event in the merged serving stream.
struct Event {
  double t;
  std::size_t tenant;
};

/// One tenant's piecewise-constant intensity over [0, kTrainS + serve_s):
/// quiet training window, then lognormal base rate x diurnal sinusoid x
/// burst windows. Deterministic per tenant index (same recipe as
/// bench_replay, so the chaos fleet is production-shaped too).
std::vector<double> TenantRateBins(std::size_t tenant, const Options& o) {
  stats::Rng rng(9000 + tenant);
  const double base = std::clamp(std::exp(rng.NextGaussian()), 0.05, 50.0);
  const double phase = rng.NextDouble();
  struct Burst {
    double start, len, mult;
  };
  std::vector<Burst> bursts(1 + rng.NextBounded(3));
  for (auto& b : bursts) {
    b.start = rng.NextDouble() * (o.serve_s - 120.0);
    b.len = 30.0 + 60.0 * rng.NextDouble();
    b.mult = 4.0 + 6.0 * rng.NextDouble();
  }
  const auto bins = static_cast<std::size_t>((kTrainS + o.serve_s) / kBinS);
  std::vector<double> rates(bins, 0.0);
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double s = (static_cast<double>(bin) + 0.5) * kBinS - kTrainS;
    if (s < 0.0) continue;
    double r =
        base * (1.0 + 0.6 * std::sin(2.0 * M_PI * (s / o.serve_s + phase)));
    for (const auto& b : bursts) {
      if (s >= b.start && s < b.start + b.len) r *= b.mult;
    }
    rates[bin] = r;
  }
  return rates;
}

const char* kArchetypeSpecs[] = {
    "robust_hp:target=0.9",
    "robust_rt:target=1.0",
    "robust_cost:target=2.0",
    "backup_pool:pool_size=2",
};

/// Trains one archetype model and returns its Scaler::SaveState buffer;
/// tenant i restores buffer i % archetypes.
std::string TrainArchetype(std::size_t k, const Options& options) {
  const double period = 600.0;
  std::vector<double> rates;
  for (double t = 0.5 * kBinS; t < kTrainS; t += kBinS) {
    const double phase = std::fmod(t, period) / period;
    rates.push_back(
        1.0 +
        0.6 * std::sin(2.0 * M_PI * (phase + static_cast<double>(k) / 7.3)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kBinS);
  stats::Rng rng(500 + k);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto spec = api::ParseStrategySpec(
      kArchetypeSpecs[k %
                      (sizeof(kArchetypeSpecs) / sizeof(kArchetypeSpecs[0]))]);
  RS_CHECK(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(trace)
                    .WithBinWidth(kBinS)
                    .WithForecastHorizon(kTrainS + options.serve_s)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(options.plan_interval)
                    .WithMcSamples(options.mc_samples)
                    .Build();
  RS_CHECK(scaler.ok()) << scaler.status().ToString();
  std::ostringstream out;
  RS_CHECK(scaler->SaveState(out).ok());
  return out.str();
}

/// One boundary's outcome in the recorded serving history.
struct BoundaryRecord {
  sim::ScalingAction action;
  bool degraded = false;
};

struct RunResult {
  std::size_t threads = 0;
  double serve_s = 0.0;  ///< Storm-window wall time (excludes calm/verify).
  std::size_t plan_batches = 0;
  std::size_t boundaries = 0;
  std::size_t boundaries_served = 0;
  std::size_t fallback_boundaries = 0;
  std::size_t torn_plans = 0;
  std::size_t rejected_observations = 0;
  std::size_t saves_attempted = 0;
  std::size_t saves_failed = 0;
  std::size_t retrains_requested = 0;
  std::size_t retrains_rejected = 0;
  std::uint64_t faults_fired = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t probes = 0;
  std::size_t tenants_recovered = 0;  ///< HEALTHY after the calm window.
  std::vector<std::vector<BoundaryRecord>> history;  ///< [tenant][boundary].
  std::vector<api::TenantHealthInfo> final_health;   ///< [tenant].
};

/// Byte-identical serving-history comparison between two runs: the chaos
/// replay guarantee (worker counts must change wall time, never the storm's
/// serving history).
void CheckParity(const RunResult& baseline, const RunResult& run) {
  RS_CHECK(baseline.faults_fired == run.faults_fired)
      << baseline.threads << " vs " << run.threads
      << " workers fired different fault counts: " << baseline.faults_fired
      << " vs " << run.faults_fired;
  RS_CHECK(baseline.boundaries_served == run.boundaries_served &&
           baseline.fallback_boundaries == run.fallback_boundaries &&
           baseline.rejected_observations == run.rejected_observations &&
           baseline.breaker_opens == run.breaker_opens &&
           baseline.probes == run.probes &&
           baseline.tenants_recovered == run.tenants_recovered)
      << baseline.threads << " vs " << run.threads
      << " workers diverged on degradation totals";
  RS_CHECK(baseline.history.size() == run.history.size());
  for (std::size_t i = 0; i < baseline.history.size(); ++i) {
    const auto& a = baseline.history[i];
    const auto& b = run.history[i];
    RS_CHECK(a.size() == b.size()) << "tenant " << i;
    for (std::size_t k = 0; k < a.size(); ++k) {
      RS_CHECK(a[k].degraded == b[k].degraded &&
               a[k].action.deletions == b[k].action.deletions &&
               a[k].action.creation_times == b[k].action.creation_times)
          << baseline.threads << " vs " << run.threads << " workers: tenant "
          << i << ", boundary " << k << " diverged";
    }
    const auto& ha = baseline.final_health[i];
    const auto& hb = run.final_health[i];
    RS_CHECK(ha.health == hb.health && ha.plan_failures == hb.plan_failures &&
             ha.fallbacks_served == hb.fallbacks_served &&
             ha.breaker_opens == hb.breaker_opens && ha.probes == hb.probes &&
             ha.retry_at == hb.retry_at)
        << baseline.threads << " vs " << run.threads << " workers: tenant "
        << i << " health diverged";
  }
}

RunResult RunOnce(const Options& options,
                  const std::vector<std::string>& names,
                  const std::vector<std::string>& buffers,
                  const std::vector<Event>& events, std::size_t threads) {
  RunResult run;
  run.threads = threads;
  run.history.resize(names.size());
  const double horizon = kTrainS + options.serve_s;

  api::ScalerFleet fleet(threads);
  // Synchronous retrains: the refit runs inline at the enqueue point, so
  // swap timing — and therefore the whole serving history — is
  // deterministic under any plan-worker count.
  api::FreshnessPolicy freshness;
  freshness.pipeline.dt = kBinS;
  freshness.pipeline.forecast_horizon = horizon;
  freshness.min_retrain_interval = options.plan_every;
  freshness.retrain_workers = 0;
  RS_CHECK(fleet.EnableFreshness(freshness).ok());
  api::RobustnessPolicy robustness;
  // Two strikes and short backoffs: independent per-boundary faults at
  // bench probabilities rarely land three in a row, so the default
  // threshold would leave the quarantine/probe path cold. This way the
  // storm drives the full state machine and the calm window still has
  // room for every probe to fire.
  robustness.breaker_threshold = 2;
  robustness.backoff_base = 2.0 * options.plan_every;
  robustness.backoff_max = 10.0 * options.plan_every;
  fleet.ConfigureRobustness(robustness);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::istringstream in(buffers[i % buffers.size()]);
    auto scaler = api::ScalerBuilder::RestoreState(in);
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(fleet.Register(names[i], std::move(scaler).ValueOrDie()).ok());
  }

  const auto plan_batch = [&](api::ScalerFleet* f, RunResult* r, double t) {
    for (auto& plan : f->PlanAll(t)) {
      ++r->boundaries;
      if (plan.status.ok()) ++r->boundaries_served;
      if (plan.degraded) {
        ++r->fallback_boundaries;
        // A fallback boundary holds the last-good plan; a non-empty action
        // here would be a torn (half-applied) plan escaping the gate.
        if (plan.action.deletions != 0 || !plan.action.creation_times.empty())
          ++r->torn_plans;
      }
      const std::size_t tenant = static_cast<std::size_t>(
          std::find(names.begin(), names.end(), plan.tenant) - names.begin());
      r->history[tenant].push_back({std::move(plan.action), plan.degraded});
    }
    ++r->plan_batches;
  };

  // The storm: every serving-path, retrain, and persist site is armed with
  // the seeded random schedule while the whole arrival stream is served.
  Stopwatch watch;
  {
    fault::StormOptions storm;
    storm.fire_probability = options.fire_probability;
    fault::FaultPlan plan = fault::MakeStormPlan(options.storm_seed, storm);
    // Sustained outages on top of the random drizzle: every 10th tenant's
    // planner dies partway through the storm (a period-1 rule fails every
    // boundary until the storm lifts). Independent per-boundary faults at
    // bench probabilities rarely land `breaker_threshold` strikes in a
    // row, so without these the quarantine/half-open-probe machinery
    // would sit cold all run.
    for (std::size_t i = 5; i < names.size(); i += 10) {
      fault::FaultRule rule;
      rule.site = "fleet.plan";
      rule.scope = names[i];
      rule.hit = 5 + i % 11;
      rule.period = 1;
      rule.fault.code = StatusCode::kRuntimeError;
      plan.rules.push_back(std::move(rule));
    }
    fault::ScopedFaultInjection inject(std::move(plan));
    double next_plan = kTrainS + options.plan_every;
    for (const auto& event : events) {
      while (next_plan <= event.t) {
        plan_batch(&fleet, &run, next_plan);
        if (options.save_every > 0 &&
            run.plan_batches % options.save_every == 0) {
          ++run.saves_attempted;
          if (!fleet.SaveFleetToFile(options.state_out).ok())
            ++run.saves_failed;
        }
        if (options.retrain_every > 0 &&
            run.plan_batches % options.retrain_every == 0) {
          ++run.retrains_requested;
          if (!fleet.RequestRetrain(names[run.plan_batches % names.size()])
                   .ok())
            ++run.retrains_rejected;
        }
        next_plan += options.plan_every;
      }
      // Injected observe faults reject the arrival deterministically; drop
      // the datapoint and keep serving, the way a front end would.
      if (!fleet.Observe(names[event.tenant], event.t).ok())
        ++run.rejected_observations;
    }
    plan_batch(&fleet, &run, horizon);
    run.serve_s = watch.ElapsedSeconds();
    // Journal side-channel: the storm catalogue includes the wal.* sites,
    // which the main fleet cannot hit (EnableFreshness and the journal tap
    // are mutually exclusive). A tiny journaled fleet runs inside the storm
    // scope instead — single-threaded, re-run from a fresh directory until
    // every wal site has been exercised — so the fault-schedule draws are
    // identical under every worker count and faults_fired parity holds.
    {
      namespace fs = std::filesystem;
      const fs::path wal_dir = options.state_out + ".walside";
      for (std::size_t session = 0; session < 50; ++session) {
        std::error_code ec;
        fs::remove_all(wal_dir, ec);
        wal::FleetJournal journal;
        wal::JournalPolicy policy;
        policy.fsync = wal::FsyncPolicy::kEveryRecord;
        policy.segment_bytes = 256;  // Rotate every couple of records.
        if (!journal.Open(wal_dir.string(), policy).ok()) continue;
        api::ScalerFleet side(0);
        for (std::size_t i = 0; i < 2; ++i) {
          std::istringstream in(buffers[i % buffers.size()]);
          auto scaler = api::ScalerBuilder::RestoreState(in);
          RS_CHECK(scaler.ok()) << scaler.status().ToString();
          RS_CHECK(side.Register("wal-" + std::to_string(i),
                                 std::move(scaler).ValueOrDie())
                       .ok());
        }
        if (!wal::EnableJournal(&side, &journal).ok()) continue;
        for (std::size_t step = 1; step <= 8 && journal.status().ok();
             ++step) {
          const double t = kTrainS + static_cast<double>(step);
          (void)side.Observe("wal-0", t - 0.5);
          (void)side.Observe("wal-1", t - 0.25);
          (void)side.PlanAll(t);
        }
        journal.Detach();
        const auto side_stats = inject.Stats();
        const auto hit = [&side_stats](const char* site) {
          const auto it = side_stats.find(site);
          return it != side_stats.end() && it->second.hits > 0;
        };
        if (hit("wal.append") && hit("wal.fsync") && hit("wal.rotate")) break;
      }
      std::error_code ec;
      fs::remove_all(wal_dir, ec);
    }
    run.faults_fired = inject.total_fired();
    // The storm must actually roll over the whole catalogue: a site with
    // zero hits means the scenario stopped exercising that path.
    const auto stats = inject.Stats();
    for (const auto& site : fault::RegisteredSites()) {
      const auto it = stats.find(site.name);
      RS_CHECK(it != stats.end() && it->second.hits > 0)
          << "site " << site.name << " was never exercised by the storm";
    }
  }

  // Calm window: the storm is disarmed, the clock keeps ticking, and the
  // half-open probes bring quarantined tenants back.
  for (std::size_t k = 1; k <= options.calm_batches; ++k) {
    plan_batch(&fleet, &run, horizon + static_cast<double>(k) *
                                            options.plan_every);
  }

  const auto snapshot = fleet.Snapshot();
  run.breaker_opens = snapshot.breaker_opens;
  for (const auto& name : names) {
    auto health = fleet.Health(name);
    RS_CHECK(health.ok()) << health.status().ToString();
    run.probes += health->probes;
    if (health->health == api::TenantHealth::kHealthy) ++run.tenants_recovered;
    run.final_health.push_back(std::move(health).ValueOrDie());
  }

  // Storms must never leave an unloadable state file behind: the last
  // snapshot on disk (written mid-storm or now) restores cleanly,
  // breaker state and all.
  RS_CHECK(fleet.SaveFleetToFile(options.state_out).ok());
  auto restored = api::ScalerFleet::LoadFleetFromFile(options.state_out);
  RS_CHECK(restored.ok()) << restored.status().ToString();
  RS_CHECK(restored->Snapshot().tenants == names.size());

  const double availability = static_cast<double>(run.boundaries_served) /
                              static_cast<double>(run.boundaries);
  RS_CHECK(availability >= 0.99)
      << "availability " << availability << " under the storm";
  RS_CHECK(run.torn_plans == 0) << run.torn_plans << " torn plans";
  return run;
}

void WriteJson(const Options& options, const std::vector<RunResult>& runs,
               std::size_t total_arrivals) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"chaos\",\n"
      << "  \"tenants\": " << options.tenants << ",\n"
      << "  \"archetypes\": " << options.archetypes << ",\n"
      << "  \"arrivals\": " << total_arrivals << ",\n"
      << "  \"serve_window_s\": " << options.serve_s << ",\n"
      << "  \"plan_every_s\": " << options.plan_every << ",\n"
      << "  \"storm_seed\": " << options.storm_seed << ",\n"
      << "  \"fire_probability\": " << options.fire_probability << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const auto boundaries = static_cast<double>(run.boundaries);
    out << "    {\"threads\": " << run.threads
        << ", \"serve_s\": " << run.serve_s << ", \"arrivals_per_s\": "
        << static_cast<double>(total_arrivals) / run.serve_s
        << ", \"boundaries\": " << run.boundaries << ", \"availability\": "
        << static_cast<double>(run.boundaries_served) / boundaries
        << ", \"fallback_fraction\": "
        << static_cast<double>(run.fallback_boundaries) / boundaries
        << ", \"torn_plans\": " << run.torn_plans
        << ", \"faults_fired\": " << run.faults_fired
        << ", \"rejected_observations\": " << run.rejected_observations
        << ", \"breaker_opens\": " << run.breaker_opens
        << ", \"probes\": " << run.probes << ", \"recovered_fraction\": "
        << static_cast<double>(run.tenants_recovered) /
               static_cast<double>(options.tenants)
        << ", \"saves_attempted\": " << run.saves_attempted
        << ", \"saves_failed\": " << run.saves_failed
        << ", \"retrains_requested\": " << run.retrains_requested
        << ", \"retrains_rejected\": " << run.retrains_rejected
        << ", \"plan_batches\": " << run.plan_batches << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  // Synthesize the production-shaped stream (seeded per tenant index, so
  // the stream is bit-identical between runs of this binary).
  std::vector<std::vector<double>> rates;
  double expected = 0.0;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    rates.push_back(TenantRateBins(i, options));
    for (double r : rates.back()) expected += r * kBinS;
  }
  const double scale = options.target_arrivals / expected;
  std::vector<Event> events;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    for (double& r : rates[i]) r *= scale;
    auto intensity =
        *workload::PiecewiseConstantIntensity::Make(rates[i], kBinS);
    stats::Rng rng(777 + i);
    auto trace = *workload::MakeTraceFromIntensity(
        &rng, intensity, stats::DurationDistribution::Exponential(15.0));
    for (const auto& q : trace.queries()) {
      events.push_back({q.arrival_time, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.tenant < b.tenant;
  });

  Stopwatch train_watch;
  std::vector<std::string> buffers;
  for (std::size_t k = 0; k < options.archetypes; ++k) {
    buffers.push_back(TrainArchetype(k, options));
  }
  std::vector<std::string> names;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    names.push_back("fn-" + std::to_string(i));
  }
  std::printf(
      "chaos: %zu tenants (%zu archetypes, trained in %.2f s), %zu arrivals "
      "over %.0f s serving, storm seed %llu (p=%.3f), PlanAll every %.0f s, "
      "R=%zu\n\n",
      options.tenants, options.archetypes, train_watch.ElapsedSeconds(),
      events.size(), options.serve_s,
      static_cast<unsigned long long>(options.storm_seed),
      options.fire_probability, options.plan_every, options.mc_samples);

  std::vector<RunResult> runs;
  std::printf("%8s %10s %8s %10s %8s %8s %8s %10s %6s\n", "threads",
              "serve_s", "avail", "fallback", "fired", "opens", "probes",
              "recovered", "torn");
  for (std::size_t threads : options.threads) {
    runs.push_back(RunOnce(options, names, buffers, events, threads));
    const auto& run = runs.back();
    CheckParity(runs.front(), run);
    const auto boundaries = static_cast<double>(run.boundaries);
    std::printf(
        "%8zu %10.3f %7.4f%% %9.4f%% %8llu %8llu %8llu %9.1f%% %6zu\n",
        run.threads, run.serve_s,
        100.0 * static_cast<double>(run.boundaries_served) / boundaries,
        100.0 * static_cast<double>(run.fallback_boundaries) / boundaries,
        static_cast<unsigned long long>(run.faults_fired),
        static_cast<unsigned long long>(run.breaker_opens),
        static_cast<unsigned long long>(run.probes),
        100.0 * static_cast<double>(run.tenants_recovered) /
            static_cast<double>(options.tenants),
        run.torn_plans);
  }

  if (!options.json_path.empty()) {
    WriteJson(options, runs, events.size());
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
