// Table I: accuracy of the RobustScaler variants with Monte Carlo
// approximation on simulated data.
//
// Paper setup: intensity λ(t) = peak · 4^40 u^40 (1-u)^40 + 0.001 with an
// exact period of 3600 s over 7 h; pod pending 13 s fixed; processing
// Exp(20 s); first 6 h train, last hour test; decisions every 5 s with
// R = 1000. Targets: HP 0.9; RT (d − µs) 1 s; cost idle budget 2 s.
//
// We use peak = 400 instead of the paper's headline 10^4 so this harness
// replays in seconds rather than hours — the achieved-vs-target comparison
// is the result being reproduced, not the absolute traffic volume (the
// scalability axis is covered by bench_fig8). Documented in EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/core/forecast.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/nhpp_sampler.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Table I — target vs achieved QoS/cost with MC approximation");

  const double peak = 400.0;
  const double horizon = 7.0 * 3600.0;
  auto analytic = rs::workload::MakeScalabilityIntensity(peak);
  auto intensity = *rs::workload::Discretize(analytic, 5.0, horizon);

  rs::stats::Rng rng(2022);
  auto trace = *rs::workload::MakeTraceFromIntensity(
      &rng, intensity, rs::stats::DurationDistribution::Exponential(20.0));
  auto [train, test] = trace.SplitAt(6.0 * 3600.0);
  std::printf("simulated trace: %zu train / %zu test queries (peak QPS %.0f)\n",
              train.size(), test.size(), peak);

  // Ground-truth forecast for the test hour (the paper evaluates the
  // decision layer with the model already accurate; the NHPP-fit column is
  // exercised by bench_table3).
  std::vector<double> test_rates;
  for (double t = 6.0 * 3600.0; t < horizon; t += 5.0) {
    test_rates.push_back(analytic(t + 2.5));
  }
  auto forecast =
      *rs::workload::PiecewiseConstantIntensity::Make(test_rates, 5.0);
  const auto pending = rs::stats::DurationDistribution::Deterministic(13.0);

  rs::sim::EngineOptions engine;
  engine.pending = pending;

  struct Row {
    rs::core::ScalerVariant variant;
    const char* name;
    double target;
  };
  const Row rows[] = {
      {rs::core::ScalerVariant::kHittingProbability, "RobustScaler-HP", 0.9},
      {rs::core::ScalerVariant::kResponseTime, "RobustScaler-RT", 1.0},
      {rs::core::ScalerVariant::kCost, "RobustScaler-cost", 2.0},
  };
  std::printf("\n%-20s %12s %15s\n", "variant", "target", "achieved");
  for (const auto& row : rows) {
    rs::core::SequentialScalerOptions opts;
    opts.variant = row.variant;
    opts.mc_samples = 1000;
    opts.planning_interval = 5.0;
    switch (row.variant) {
      case rs::core::ScalerVariant::kHittingProbability:
        opts.alpha = 1.0 - row.target;
        break;
      case rs::core::ScalerVariant::kResponseTime:
        opts.rt_excess = row.target;
        break;
      case rs::core::ScalerVariant::kCost:
        opts.idle_budget = row.target;
        break;
    }
    rs::core::RobustScalerPolicy policy(forecast, pending, opts);
    auto result = rs::sim::Simulate(test, &policy, engine);
    RS_CHECK(result.ok());
    auto metrics = rs::sim::ComputeMetrics(*result);
    RS_CHECK(metrics.ok());

    double achieved = 0.0;
    switch (row.variant) {
      case rs::core::ScalerVariant::kHittingProbability:
        achieved = metrics->hit_rate;
        break;
      case rs::core::ScalerVariant::kResponseTime:
        achieved = metrics->wait_avg;  // d − µs: the wait component.
        break;
      case rs::core::ScalerVariant::kCost: {
        // Mean idle time per served instance: lifecycle − τ − s.
        double idle_plus_s = 0.0;
        std::size_t used = 0;
        for (const auto& inst : result->instances) {
          if (!inst.served_query) continue;
          ++used;
          idle_plus_s += std::max(0.0, inst.lifecycle_cost - 13.0);
        }
        achieved = used > 0
                       ? idle_plus_s / static_cast<double>(used) - 20.0
                       : 0.0;
        break;
      }
    }
    std::printf("%-20s %12.2f %15.3f\n", row.name, row.target, achieved);
  }
  std::printf("\nPaper Table I reports achieved (0.99, 0.51, 2.50) for targets\n"
              "(0.9, 1, 2): same-order agreement with mild over-delivery on HP\n"
              "is the expected pattern.\n");
  return 0;
}
