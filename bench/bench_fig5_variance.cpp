// Fig. 5(a,b): QoS variance vs mean QoS on the CRS trace.
//
// Construction (Section VII-B1): order queries by arrival, average the QoS
// metric over every 50 consecutive queries, report the variance of those
// window means against the overall mean — one point per (strategy,
// parameter) pair. Expected shape: RobustScaler-HP/RT lines sit far below
// AdapBP (stabler QoS); RobustScaler-cost in between.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using rs::bench::Scenario;

void Report(const std::string& strategy, double parameter,
            const rs::Result<rs::sim::SimulationResult>& result) {
  RS_CHECK(result.ok());
  const auto rts = rs::sim::ResponseTimes(*result);
  const auto hits = rs::sim::HitIndicators(*result);
  auto rt_var = rs::sim::WindowedQosVariance(rts, 50);
  auto hit_var = rs::sim::WindowedQosVariance(hits, 50);
  RS_CHECK(rt_var.ok() && hit_var.ok());
  const auto metrics = rs::sim::ComputeMetrics(*result);
  RS_CHECK(metrics.ok());
  std::printf("%-22s %10.4g %12.4f %14.5f %10.1f %14.1f\n", strategy.c_str(),
              parameter, metrics->hit_rate, *hit_var, metrics->rt_avg,
              *rt_var);
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 5 — variance vs mean of hit rate and RT (CRS, 50-query windows)");
  auto scenario = MakeCrsScenario();
  const auto trained = TrainOn(scenario);
  const auto engine = EngineFor(scenario);

  std::printf("%-22s %10s %12s %14s %10s %14s\n", "strategy", "parameter",
              "hit_mean", "hit_var", "rt_mean", "rt_var");

  for (double b : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    auto bp = MakeNamedStrategy(
        {.name = "backup_pool", .params = {{"pool_size", b}}});
    Report("BP", b, rs::sim::Simulate(scenario.test, bp.get(), engine));
  }
  for (double mult : {50.0, 150.0, 400.0, 800.0, 1600.0}) {
    auto adap = MakeNamedStrategy(
        {.name = "adaptive_backup_pool", .params = {{"multiplier", mult}}});
    Report("AdapBP", mult,
           rs::sim::Simulate(scenario.test, adap.get(), engine));
  }
  for (double target : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    target);
    Report("RobustScaler-HP", target,
           rs::sim::Simulate(scenario.test, policy.get(), engine));
  }
  for (double target : {10.0, 6.0, 3.0, 1.0, 0.3}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kResponseTime,
                                    target);
    Report("RobustScaler-RT", target,
           rs::sim::Simulate(scenario.test, policy.get(), engine));
  }
  for (double target : {15.0, 60.0, 180.0, 400.0, 800.0}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kCost, target);
    Report("RobustScaler-cost", target,
           rs::sim::Simulate(scenario.test, policy.get(), engine));
  }

  std::printf("\nExpected (paper Fig. 5): at matched mean QoS, RobustScaler-HP\n"
              "and -RT show materially lower variance than AdapBP;\n"
              "RobustScaler-cost lies in between.\n");
  return 0;
}
