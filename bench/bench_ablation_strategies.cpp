// Ablation: the sequential scheme's two key ingredients, isolated.
//
//  * κ look-ahead (vs the Section VI-C naive batch strategy that replans
//    only after a whole batch is consumed),
//  * stochastic constraints (vs an uncertainty-blind mean-rate scheduler),
//  * online refitting (vs a stale static forecast under traffic drift —
//    the Section VII-B2 deployment guidance).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/core/extensions.hpp"
#include "rs/workload/nhpp_sampler.hpp"

namespace {

rs::workload::PiecewiseConstantIntensity Constant(double rate, double horizon) {
  return *rs::workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, rate), horizon / 100.0);
}

void Report(const char* name, const rs::sim::Metrics& m, double ref) {
  std::printf("%-22s %10.3f %10.2f %10.3f\n", name, m.hit_rate, m.rt_avg,
              rs::sim::RelativeCost(m, ref));
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Ablation — look-ahead, stochastic constraints, refitting");

  const double rate = 0.5, horizon = 40000.0, tau = 13.0;
  rs::stats::Rng rng(99);
  auto intensity = Constant(rate, horizon);
  auto trace = *rs::workload::MakeTraceFromIntensity(
      &rng, intensity, rs::stats::DurationDistribution::Exponential(20.0));
  auto pending = rs::stats::DurationDistribution::Deterministic(tau);
  rs::sim::EngineOptions engine;
  engine.pending = pending;

  auto reactive = MakeNamedStrategy({.name = "backup_pool", .params = {}});
  const double ref =
      MustMetrics(rs::sim::Simulate(trace, reactive.get(), engine)).total_cost;

  std::printf("\nsteady Poisson traffic (rate %.1f QPS), HP target 0.9:\n",
              rate);
  std::printf("%-22s %10s %10s %10s\n", "strategy", "hit_rate", "rt_avg",
              "rel_cost");

  rs::core::SequentialScalerOptions hp;
  hp.variant = rs::core::ScalerVariant::kHittingProbability;
  hp.alpha = 0.1;
  hp.planning_interval = 2.0;
  rs::core::RobustScalerPolicy robust(intensity, pending, hp);
  Report("RobustScaler-HP", MustMetrics(rs::sim::Simulate(trace, &robust, engine)),
         ref);

  rs::core::NaiveBatchOptions nopts;
  nopts.alpha = 0.1;
  nopts.batch = 20;
  rs::core::NaiveBatchScaler naive(intensity, pending, nopts);
  Report("NaiveBatch (K=20)",
         MustMetrics(rs::sim::Simulate(trace, &naive, engine)), ref);

  rs::core::MeanRateOptions mopts;
  mopts.depth = 20;
  mopts.planning_interval = 2.0;
  rs::core::MeanRateScaler mean_rate(intensity, pending, mopts);
  Report("MeanRate (no uncert.)",
         MustMetrics(rs::sim::Simulate(trace, &mean_rate, engine)), ref);

  // ---- Drift scenario: traffic doubles at test time. ----
  std::printf("\ntraffic drift (train 0.2 QPS -> test 0.8 QPS), HP target 0.9:\n");
  std::printf("%-22s %10s %10s %10s\n", "strategy", "hit_rate", "rt_avg",
              "rel_cost");
  rs::stats::Rng rng2(100);
  auto train_trace = *rs::workload::MakeTraceFromIntensity(
      &rng2, Constant(0.2, 40000.0),
      rs::stats::DurationDistribution::Exponential(20.0));
  auto test_trace = *rs::workload::MakeTraceFromIntensity(
      &rng2, Constant(0.8, 20000.0),
      rs::stats::DurationDistribution::Exponential(20.0));
  const double drift_ref =
      MustMetrics(rs::sim::Simulate(test_trace, reactive.get(), engine))
          .total_cost;

  rs::core::RobustScalerPolicy stale(Constant(0.2, test_trace.horizon()),
                                     pending, hp);
  Report("static (stale model)",
         MustMetrics(rs::sim::Simulate(test_trace, &stale, engine)), drift_ref);

  rs::core::RefittingOptions ropts;
  ropts.refit_interval = 1800.0;
  ropts.pipeline.dt = 100.0;
  ropts.pipeline.forecast_horizon = test_trace.horizon();
  ropts.scaler = hp;
  rs::core::RefittingPolicy refit(train_trace, pending, ropts);
  Report("refit every 30 min",
         MustMetrics(rs::sim::Simulate(test_trace, &refit, engine)), drift_ref);
  std::printf("(refits performed: %zu)\n", refit.refit_count());

  std::printf("\nExpected: RobustScaler-HP ~0.9 hits; NaiveBatch loses the\n"
              "first queries of every batch; MeanRate lands near coin-flip\n"
              "hits; refitting recovers the target under drift while the\n"
              "stale static model under-provisions.\n");
  return 0;
}
