// Fig. 10(d): cost vs planning frequency — RobustScaler-HP's planning
// interval Δ swept from 1 to 60 s at a fixed target; the paper shows cost
// increasing with Δ at the same attained response time.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 10(d) — efficiency vs planning interval Δ (CRS)");

  auto scenario = MakeCrsScenario();
  const auto trained = TrainOn(scenario);

  std::printf("%10s %10s %10s %10s\n", "delta_s", "hit_rate", "rt_avg",
              "rel_cost");
  for (double delta : {1.0, 5.0, 15.0, 30.0, 60.0}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    /*target=*/0.9, /*planning_interval=*/delta);
    const auto m = RunStrategy(scenario, policy.get());
    std::printf("%10.0f %10.3f %10.2f %10.3f\n", delta, m.hit_rate, m.rt_avg,
                rs::sim::RelativeCost(m, scenario.reactive_cost));
  }
  std::printf("\nExpected (paper Fig. 10(d)): larger Δ costs more for the\n"
              "same attained QoS — frequent replanning trims idle time.\n");
  return 0;
}
