// Micro-benchmarks (google-benchmark) for the primitives whose complexity
// the paper analyzes: banded Cholesky (O(T·L²)), one ADMM iteration,
// sort-and-search decisions (O(R log R)), κ computation, FFT, and the
// arrival-path sampler. Also covers the Section VII-B2 claim that one
// decision update takes < 5 ms at trace-level QPS, and the hot-path
// kernels behind bench_plan_hot_path: restructured rs::linalg vector ops,
// ziggurat exponential sampling, batched inverse-cumulative resolution,
// radix vs comparison sorting, and the allocation-free DecisionKernel.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "rs/common/radix_sort.hpp"
#include "rs/core/admm.hpp"
#include "rs/core/arrival_predictor.hpp"
#include "rs/core/decision.hpp"
#include "rs/core/kappa.hpp"
#include "rs/linalg/banded_cholesky.hpp"
#include "rs/linalg/difference_ops.hpp"
#include "rs/linalg/vector_ops.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/fft.hpp"
#include "rs/workload/intensity.hpp"

namespace {

using rs::linalg::Vec;

void BM_BandedCholesky(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  rs::linalg::SymmetricBandedMatrix a(t, bw);
  Vec w(t, 2.0);
  a.AddDiagonal(w);
  rs::linalg::AddGramD2(1.0, &a);
  rs::linalg::AddGramDL(1.0, bw, &a);
  Vec b(t, 1.0), x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::linalg::BandedCholesky::FactorAndSolve(a, b, &x));
  }
  state.SetComplexityN(static_cast<long long>(t * bw * bw));
}
BENCHMARK(BM_BandedCholesky)
    ->Args({1024, 16})
    ->Args({4096, 64})
    ->Args({8192, 144})
    ->Unit(benchmark::kMillisecond);

void BM_AdmmFit(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto period = static_cast<std::size_t>(state.range(1));
  rs::stats::Rng rng(1);
  std::vector<double> counts(t);
  for (auto& c : counts) {
    c = static_cast<double>(rs::stats::SamplePoisson(&rng, 30.0));
  }
  rs::core::NhppConfig config;
  config.dt = 60.0;
  config.beta1 = 10.0;
  config.beta2 = 50.0;
  config.period = period;
  rs::core::AdmmOptions options;
  options.max_iterations = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::FitNhpp(counts, config, options));
  }
  state.SetLabel("30 ADMM iterations");
}
BENCHMARK(BM_AdmmFit)
    ->Args({1440, 144})    // 1 day of 1-min bins, daily period at 10-min agg.
    ->Args({4032, 1008})   // 4 weeks of 10-min bins, weekly period.
    ->Unit(benchmark::kMillisecond);

void BM_SortAndSearchRt(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(2);
  rs::core::McSamples samples;
  samples.xi.resize(r);
  samples.tau.assign(r, 13.0);
  for (auto& v : samples.xi) v = rs::stats::SampleExponential(&rng, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::SolveRtConstrained(samples, 1.0));
  }
  state.SetComplexityN(static_cast<long long>(r));
}
BENCHMARK(BM_SortAndSearchRt)->Range(128, 65536)->Complexity();

void BM_HpQuantileDecision(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(3);
  rs::core::McSamples samples;
  samples.xi.resize(r);
  samples.tau.assign(r, 13.0);
  for (auto& v : samples.xi) v = rs::stats::SampleExponential(&rng, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::SolveHpConstrained(samples, 0.1));
  }
}
BENCHMARK(BM_HpQuantileDecision)->Arg(1000)->Arg(10000);

void BM_KappaBinarySearch(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::core::ComputeKappaBinarySearch(0.1, lambda, 13.0));
  }
}
BENCHMARK(BM_KappaBinarySearch)->Arg(1)->Arg(100)->Arg(10000);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(4);
  std::vector<rs::ts::Complex> data(n);
  for (auto& c : data) c = rs::ts::Complex(rng.NextDouble(), 0.0);
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(rs::ts::Fft(&copy, false));
  }
}
BENCHMARK(BM_Fft)->Arg(4096)->Arg(4095)->Arg(10080);

void BM_ArrivalPathSampling(benchmark::State& state) {
  const auto paths = static_cast<std::size_t>(state.range(0));
  const auto queries = static_cast<std::size_t>(state.range(1));
  auto intensity = *rs::workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(1440, 1.0), 60.0);
  auto pending = rs::stats::DurationDistribution::Deterministic(13.0);
  rs::stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::PredictUpcomingQueries(
        intensity, 0.0, queries, paths, pending, &rng));
  }
}
BENCHMARK(BM_ArrivalPathSampling)
    ->Args({300, 10})
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Unit(benchmark::kMicrosecond);

// --- Hot-path kernels (this PR's before/after record) -----------------------

void BM_LinalgDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(6);
  Vec x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  for (auto _ : state) benchmark::DoNotOptimize(rs::linalg::Dot(x, y));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 16);
}
BENCHMARK(BM_LinalgDot)->Arg(1024)->Arg(16384);

void BM_LinalgAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(7);
  Vec x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    rs::linalg::Axpy(0.5, x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 24);
}
BENCHMARK(BM_LinalgAxpy)->Arg(1024)->Arg(16384);

void BM_ExponentialSampling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool ziggurat = state.range(1) != 0;
  rs::stats::Rng rng(8);
  std::vector<double> out(n);
  for (auto _ : state) {
    if (ziggurat) {
      rs::stats::SampleExponentialZigguratFill(&rng, 1.0, out.data(), n);
    } else {
      rs::stats::SampleExponentialFill(&rng, 1.0, out.data(), n);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(ziggurat ? "ziggurat" : "inverse-cdf");
}
BENCHMARK(BM_ExponentialSampling)->Args({1000, 0})->Args({1000, 1});

void BM_InverseCumulative(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  rs::stats::Rng rng(9);
  std::vector<double> rates(1440);
  for (auto& v : rates) v = 1.0 + rng.NextDouble();
  auto intensity =
      *rs::workload::PiecewiseConstantIntensity::Make(rates, 60.0);
  const double top = intensity.Cumulative(intensity.horizon());
  std::vector<double> targets(r), out(r);
  std::vector<std::uint32_t> order;
  for (auto& t : targets) t = top * rng.NextDouble();
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(
          intensity.InverseCumulativeBatch(targets, &out, &order));
    } else {
      for (std::size_t i = 0; i < r; ++i) {
        out[i] = intensity.InverseCumulative(targets[i]).ValueOrDie();
      }
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r));
  state.SetLabel(batched ? "batch-sweep" : "scalar-search");
}
BENCHMARK(BM_InverseCumulative)->Args({1000, 0})->Args({1000, 1});

void BM_SortDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool radix = state.range(1) != 0;
  rs::stats::Rng rng(10);
  std::vector<double> base(n), work(n);
  // Planning-target-shaped data: a shared offset plus Gamma-scale spread.
  for (auto& v : base) v = 500.0 + 40.0 * rng.NextGaussian();
  rs::common::RadixSortScratch scratch;
  for (auto _ : state) {
    work = base;
    if (radix) {
      rs::common::RadixSortAscending(work.data(), n, &scratch);
    } else {
      std::sort(work.begin(), work.end());
    }
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(radix ? "radix" : "std::sort");
}
BENCHMARK(BM_SortDoubles)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_DecisionKernelRt(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(11);
  rs::core::McSamples samples;
  samples.xi.resize(r);
  samples.tau.assign(r, 13.0);
  for (auto& v : samples.xi) v = rs::stats::SampleExponential(&rng, 0.05);
  rs::core::DecisionKernel kernel;
  for (auto _ : state) {
    kernel.Bind(samples);
    benchmark::DoNotOptimize(kernel.SolveRt(1.0));
  }
}
BENCHMARK(BM_DecisionKernelRt)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
