// Micro-benchmarks (google-benchmark) for the primitives whose complexity
// the paper analyzes: banded Cholesky (O(T·L²)), one ADMM iteration,
// sort-and-search decisions (O(R log R)), κ computation, FFT, and the
// arrival-path sampler. Also covers the Section VII-B2 claim that one
// decision update takes < 5 ms at trace-level QPS.
#include <benchmark/benchmark.h>

#include <vector>

#include "rs/core/admm.hpp"
#include "rs/core/arrival_predictor.hpp"
#include "rs/core/decision.hpp"
#include "rs/core/kappa.hpp"
#include "rs/linalg/banded_cholesky.hpp"
#include "rs/linalg/difference_ops.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/fft.hpp"

namespace {

using rs::linalg::Vec;

void BM_BandedCholesky(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  rs::linalg::SymmetricBandedMatrix a(t, bw);
  Vec w(t, 2.0);
  a.AddDiagonal(w);
  rs::linalg::AddGramD2(1.0, &a);
  rs::linalg::AddGramDL(1.0, bw, &a);
  Vec b(t, 1.0), x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::linalg::BandedCholesky::FactorAndSolve(a, b, &x));
  }
  state.SetComplexityN(static_cast<long long>(t * bw * bw));
}
BENCHMARK(BM_BandedCholesky)
    ->Args({1024, 16})
    ->Args({4096, 64})
    ->Args({8192, 144})
    ->Unit(benchmark::kMillisecond);

void BM_AdmmFit(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto period = static_cast<std::size_t>(state.range(1));
  rs::stats::Rng rng(1);
  std::vector<double> counts(t);
  for (auto& c : counts) {
    c = static_cast<double>(rs::stats::SamplePoisson(&rng, 30.0));
  }
  rs::core::NhppConfig config;
  config.dt = 60.0;
  config.beta1 = 10.0;
  config.beta2 = 50.0;
  config.period = period;
  rs::core::AdmmOptions options;
  options.max_iterations = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::FitNhpp(counts, config, options));
  }
  state.SetLabel("30 ADMM iterations");
}
BENCHMARK(BM_AdmmFit)
    ->Args({1440, 144})    // 1 day of 1-min bins, daily period at 10-min agg.
    ->Args({4032, 1008})   // 4 weeks of 10-min bins, weekly period.
    ->Unit(benchmark::kMillisecond);

void BM_SortAndSearchRt(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(2);
  rs::core::McSamples samples;
  samples.xi.resize(r);
  samples.tau.assign(r, 13.0);
  for (auto& v : samples.xi) v = rs::stats::SampleExponential(&rng, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::SolveRtConstrained(samples, 1.0));
  }
  state.SetComplexityN(static_cast<long long>(r));
}
BENCHMARK(BM_SortAndSearchRt)->Range(128, 65536)->Complexity();

void BM_HpQuantileDecision(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(3);
  rs::core::McSamples samples;
  samples.xi.resize(r);
  samples.tau.assign(r, 13.0);
  for (auto& v : samples.xi) v = rs::stats::SampleExponential(&rng, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::SolveHpConstrained(samples, 0.1));
  }
}
BENCHMARK(BM_HpQuantileDecision)->Arg(1000)->Arg(10000);

void BM_KappaBinarySearch(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::core::ComputeKappaBinarySearch(0.1, lambda, 13.0));
  }
}
BENCHMARK(BM_KappaBinarySearch)->Arg(1)->Arg(100)->Arg(10000);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rs::stats::Rng rng(4);
  std::vector<rs::ts::Complex> data(n);
  for (auto& c : data) c = rs::ts::Complex(rng.NextDouble(), 0.0);
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(rs::ts::Fft(&copy, false));
  }
}
BENCHMARK(BM_Fft)->Arg(4096)->Arg(4095)->Arg(10080);

void BM_ArrivalPathSampling(benchmark::State& state) {
  const auto paths = static_cast<std::size_t>(state.range(0));
  const auto queries = static_cast<std::size_t>(state.range(1));
  auto intensity = *rs::workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(1440, 1.0), 60.0);
  auto pending = rs::stats::DurationDistribution::Deterministic(13.0);
  rs::stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::PredictUpcomingQueries(
        intensity, 0.0, queries, paths, pending, &rng));
  }
}
BENCHMARK(BM_ArrivalPathSampling)
    ->Args({300, 10})
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
