// Table III: impact of the periodicity regularization on NHPP intensity
// estimation error.
//
// Paper setup: ground truth λ(t) = 4^10 u^10 (1-u)^10 + 0.1 with
// u = (t mod 86400)/86400 (daily period) over t ∈ [0, 604800] (one week);
// fit Eq. (1) with and without the DL periodicity term; compare MSE/MAE of
// the intensity estimates. The paper reports ~56% MSE / ~39% MAE
// improvement from the regularization.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/core/admm.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/nhpp_sampler.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Table III — periodicity regularization vs intensity error");

  const double horizon = 604800.0;  // One week, period 86400 s.
  const double dt = 600.0;          // 10-min bins: period L = 144 bins.
  auto analytic = rs::workload::MakeRegularizationIntensity();
  auto truth = *rs::workload::Discretize(analytic, dt, horizon);

  rs::stats::Rng rng(414);
  auto arrivals = rs::workload::SampleNhppTimeRescaling(&rng, truth);
  RS_CHECK(arrivals.ok());
  std::printf("simulated arrivals: %zu over one week\n", arrivals->size());

  // Aggregate to counts.
  std::vector<double> counts(truth.bins(), 0.0);
  for (double t : *arrivals) {
    const auto bin = static_cast<std::size_t>(t / dt);
    if (bin < counts.size()) counts[bin] += 1.0;
  }

  rs::core::NhppConfig with_reg;
  with_reg.dt = dt;
  with_reg.beta1 = 10.0;
  with_reg.beta2 = 50.0;
  with_reg.period = 144;
  rs::core::NhppConfig without_reg = with_reg;
  without_reg.beta2 = 0.0;
  without_reg.period = 0;

  rs::core::AdmmOptions admm;
  admm.max_iterations = 300;
  auto model_with = rs::core::FitNhpp(counts, with_reg, admm);
  auto model_without = rs::core::FitNhpp(counts, without_reg, admm);
  RS_CHECK(model_with.ok() && model_without.ok());

  const auto& true_rates = truth.rates();
  const auto est_with = model_with->Intensity();
  const auto est_without = model_without->Intensity();
  const double mse_with = rs::stats::MeanSquaredError(est_with, true_rates);
  const double mse_without =
      rs::stats::MeanSquaredError(est_without, true_rates);
  const double mae_with = rs::stats::MeanAbsoluteError(est_with, true_rates);
  const double mae_without =
      rs::stats::MeanAbsoluteError(est_without, true_rates);

  std::printf("\n%-8s %16s %16s %14s\n", "metric", "NHPP w/o reg.",
              "NHPP w/ reg.", "improvement");
  std::printf("%-8s %16.3e %16.3e %13.0f%%\n", "MSE", mse_without, mse_with,
              100.0 * (1.0 - mse_with / mse_without));
  std::printf("%-8s %16.3e %16.3e %13.0f%%\n", "MAE", mae_without, mae_with,
              100.0 * (1.0 - mae_with / mae_without));
  std::printf("\nPaper Table III: MSE 5.08e-4 -> 2.24e-4 (56%%), MAE 1.53e-2\n"
              "-> 9.30e-3 (39%%). The reproduced improvement should land in\n"
              "the same tens-of-percent band.\n");
  return 0;
}
