// Table IV: RobustScaler-HP in the simulated vs the "real" environment.
//
// The real deployment (paper: Alibaba Serverless Kubernetes replaying the
// CRS trace, HP target 0.9) differs from simulation in that decision
// computation time delays scaling actions, pod creation has API latency,
// and pod startup jitters. We reproduce the comparison with the engine's
// realistic-environment preset (see simulator/environment.hpp):
// wall-clock planning time is charged to the simulation clock.
#include <cstdio>

#include "bench_common.hpp"
#include "rs/simulator/environment.hpp"

int main() {
  using namespace rs::bench;
  PrintHeader("Table IV — RobustScaler-HP: simulated vs real environment (CRS)");

  auto scenario = MakeCrsScenario();
  const auto trained = TrainOn(scenario);

  std::printf("%-12s %10s %10s %12s\n", "environment", "HP", "RT",
              "cost/query");
  for (bool real : {false, true}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    /*target=*/0.9);
    const auto engine =
        real ? rs::sim::MakeRealEnvironment(scenario.pending, 20220414)
             : rs::sim::MakeIdealizedEnvironment(scenario.pending, 20220414);
    auto result = rs::sim::Simulate(scenario.test, policy.get(), engine);
    RS_CHECK(result.ok());
    auto m = rs::sim::ComputeMetrics(*result);
    RS_CHECK(m.ok());
    std::printf("%-12s %10.2f %10.1f %12.1f\n", real ? "Real" : "Simulated",
                m->hit_rate, m->rt_avg,
                m->total_cost / static_cast<double>(m->num_queries));
  }
  std::printf("\nPaper Table IV: simulated (0.80, 181.0, 240.3) vs real\n"
              "(0.83, 189.3, 228.7) — the rows should stay close, showing\n"
              "decision-computation delay has minimal impact.\n");
  return 0;
}
