// Table IV: RobustScaler-HP in the simulated vs the "real" environment.
//
// The real deployment (paper: Alibaba Serverless Kubernetes replaying the
// CRS trace, HP target 0.9) differs from simulation in that decision
// computation time delays scaling actions, pod creation has API latency,
// and pod startup jitters. We reproduce the comparison with the engine's
// realistic-environment preset (see simulator/environment.hpp):
// wall-clock planning time is charged to the simulation clock.
//
// The real environment is exercised through BOTH serving paths:
//  * batch replay — sim::Simulate with charge_decision_wall_time;
//  * online serving — the same trace driven through rs::api::Scaler's
//    Observe/Plan mirror (ConfigureServing with decision-time charging),
//    executed by the engine via OnlineServingAdapter. The outer engine
//    runs with charging off: the decision latency already shows up in the
//    creation times the mirror plans, so charging the adapter's Plan()
//    call too would double-count it.
#include <cstdio>

#include "bench_common.hpp"
#include "rs/api/serving_adapter.hpp"
#include "rs/simulator/environment.hpp"

namespace {

void PrintRow(const char* label, const rs::sim::Metrics& m) {
  std::printf("%-14s %10.2f %10.1f %12.1f\n", label, m.hit_rate, m.rt_avg,
              m.total_cost / static_cast<double>(m.num_queries));
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Table IV — RobustScaler-HP: simulated vs real environment (CRS)");

  auto scenario = MakeCrsScenario();
  const auto trained = TrainOn(scenario);
  constexpr std::uint64_t kSeed = 20220414;

  std::printf("%-14s %10s %10s %12s\n", "environment", "HP", "RT",
              "cost/query");
  for (bool real : {false, true}) {
    auto policy = MakeVariantPolicy(trained, scenario,
                                    rs::core::ScalerVariant::kHittingProbability,
                                    /*target=*/0.9);
    const auto engine =
        real ? rs::sim::MakeRealEnvironment(scenario.pending, kSeed)
             : rs::sim::MakeIdealizedEnvironment(scenario.pending, kSeed);
    auto result = rs::sim::Simulate(scenario.test, policy.get(), engine);
    RS_CHECK(result.ok()) << result.status().ToString();
    auto m = rs::sim::ComputeMetrics(*result);
    RS_CHECK(m.ok());
    PrintRow(real ? "Real" : "Simulated", *m);
  }

  // Real environment, online serving path: same model, same knobs, but the
  // decisions flow through the production Observe/Plan interface.
  {
    auto scaler = rs::api::ScalerBuilder()
                      .WithTrace(scenario.train)
                      .WithBinWidth(scenario.dt)
                      .WithAggregateFactor(scenario.aggregate_factor)
                      .WithForecastHorizon(scenario.test.horizon())
                      .WithTarget(rs::api::HitRate{0.9})
                      .WithPending(scenario.pending)
                      .WithPlanningInterval(kPlanningInterval)
                      .WithMcSamples(kMcSamples)
                      .Build();
    RS_CHECK(scaler.ok()) << scaler.status().ToString();

    auto mirror = rs::sim::MakeRealEnvironment(scenario.pending, kSeed);
    RS_CHECK(scaler->ConfigureServing(mirror).ok());

    auto outer = mirror;
    outer.charge_decision_wall_time = false;  // Charged inside the mirror.
    rs::api::OnlineServingAdapter adapter(&*scaler);
    auto result = rs::sim::Simulate(scenario.test, &adapter, outer);
    RS_CHECK(result.ok()) << result.status().ToString();
    RS_CHECK(adapter.status().ok()) << adapter.status().ToString();
    auto m = rs::sim::ComputeMetrics(*result);
    RS_CHECK(m.ok());
    PrintRow("Real-serving", *m);

    const auto snap = scaler->Snapshot();
    std::printf("\nserving state: %zu/%zu arrivals retained, %zu/%zu log "
                "entries retained (lookback %.0f s)\n",
                snap.arrivals_retained, snap.queries_observed,
                snap.actions_retained, snap.planning_rounds,
                snap.history_retention);
  }

  std::printf("\nPaper Table IV: simulated (0.80, 181.0, 240.3) vs real\n"
              "(0.83, 189.3, 228.7) — all rows should stay close, showing\n"
              "decision-computation delay has minimal impact; the serving\n"
              "row shows the online mirror under the same real-environment\n"
              "semantics.\n");
  return 0;
}
