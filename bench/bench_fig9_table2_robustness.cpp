// Fig. 9 + Table II: robustness against anomalies and missing data.
//
// Protocol (Section VII-B3):
//  * Alibaba trace: erase the day-4 burst from training; compare QoS/cost
//    before vs after (Fig. 9(c,d)).
//  * CRS trace: remove one entire day of the 4th week (missing data);
//    compare QoS/cost (Fig. 9(a,b)) and RT quantiles 75/95/99/99.9%
//    (Table II).
// Expected: metrics nearly identical with and without the corruption.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rs/workload/perturbation.hpp"

namespace {

using rs::bench::Scenario;

struct RunOutput {
  rs::sim::Metrics metrics;
  double rel_cost = 0.0;
};

RunOutput RunVariant(const Scenario& scenario,
                     const rs::core::TrainedPipeline& trained,
                     rs::core::ScalerVariant variant, double target) {
  using namespace rs::bench;
  auto policy = MakeVariantPolicy(trained, scenario, variant, target);
  auto metrics = RunStrategy(scenario, policy.get());
  return {metrics, rs::sim::RelativeCost(metrics, scenario.reactive_cost)};
}

void CompareScenario(const char* title, const Scenario& with_mod,
                     const Scenario& without_mod,
                     const std::vector<double>& hp_targets,
                     const std::vector<double>& cost_targets) {
  using namespace rs::bench;
  std::printf("\n---- %s ----\n", title);
  const auto trained_with = TrainOn(with_mod);
  const auto trained_without = TrainOn(without_mod);
  std::printf("%-22s %10s | %9s %9s %9s | %9s %9s %9s\n", "strategy",
              "target", "hit(w/)", "rt(w/)", "rc(w/)", "hit(w/o)", "rt(w/o)",
              "rc(w/o)");
  for (double target : hp_targets) {
    auto a = RunVariant(with_mod, trained_with,
                        rs::core::ScalerVariant::kHittingProbability, target);
    auto b = RunVariant(without_mod, trained_without,
                        rs::core::ScalerVariant::kHittingProbability, target);
    std::printf("%-22s %10.3g | %9.3f %9.1f %9.3f | %9.3f %9.1f %9.3f\n",
                "RobustScaler-HP", target, a.metrics.hit_rate,
                a.metrics.rt_avg, a.rel_cost, b.metrics.hit_rate,
                b.metrics.rt_avg, b.rel_cost);
  }
  for (double target : cost_targets) {
    auto a = RunVariant(with_mod, trained_with, rs::core::ScalerVariant::kCost,
                        target);
    auto b = RunVariant(without_mod, trained_without,
                        rs::core::ScalerVariant::kCost, target);
    std::printf("%-22s %10.3g | %9.3f %9.1f %9.3f | %9.3f %9.1f %9.3f\n",
                "RobustScaler-cost", target, a.metrics.hit_rate,
                a.metrics.rt_avg, a.rel_cost, b.metrics.hit_rate,
                b.metrics.rt_avg, b.rel_cost);
  }
}

}  // namespace

int main() {
  using namespace rs::bench;
  PrintHeader("Fig. 9 / Table II — robustness to anomalies and missing data");

  // ---------- Alibaba: with vs without the day-4 burst. ----------
  auto alibaba = MakeAlibabaScenario();
  Scenario alibaba_clean = alibaba;
  {
    const auto burst = rs::workload::AlibabaBurstWindow();
    auto cleaned = rs::workload::ThinWindow(alibaba.train, burst.begin,
                                            burst.end, /*keep_prob=*/0.08);
    RS_CHECK(cleaned.ok());
    alibaba_clean.train = std::move(*cleaned);
  }
  CompareScenario("Alibaba: training with burst (w/) vs burst erased (w/o)",
                  alibaba, alibaba_clean,
                  /*hp_targets=*/{0.8, 0.9}, /*cost_targets=*/{8.0, 20.0});

  // ---------- CRS: with vs without one missing training day. ----------
  auto crs = MakeCrsScenario();
  Scenario crs_missing = crs;
  {
    // Paper: remove all queries in one entire day of the 4th (test) week's
    // *training-side* counterpart — we erase day 18 of training.
    const double day_begin = 18.0 * 86400.0;
    crs_missing.train =
        rs::workload::RemoveWindow(crs.train, day_begin, day_begin + 86400.0);
  }
  CompareScenario("CRS: missing training day (w/) vs original (w/o)",
                  crs_missing, crs,
                  /*hp_targets=*/{0.8, 0.9}, /*cost_targets=*/{60.0, 180.0});

  // ---------- Table II: RT quantiles on CRS. ----------
  std::printf("\n---- Table II — response-time quantiles on CRS (s) ----\n");
  std::printf("%-22s %12s | %9s %9s %9s %9s\n", "strategy", "training",
              "75%", "95%", "99%", "99.9%");
  const auto trained_missing = TrainOn(crs_missing);
  const auto trained_full = TrainOn(crs);
  struct Spec {
    rs::core::ScalerVariant variant;
    const char* name;
    double target;
  };
  const Spec specs[] = {
      {rs::core::ScalerVariant::kHittingProbability, "RobustScaler-HP", 0.9},
      {rs::core::ScalerVariant::kCost, "RobustScaler-cost", 60.0},
  };
  for (const auto& spec : specs) {
    for (bool missing : {true, false}) {
      const auto& scenario = missing ? crs_missing : crs;
      const auto& trained = missing ? trained_missing : trained_full;
      auto policy =
          MakeVariantPolicy(trained, scenario, spec.variant, spec.target);
      auto m = RunStrategy(scenario, policy.get());
      std::printf("%-22s %12s | %9.1f %9.1f %9.1f %9.1f\n", spec.name,
                  missing ? "w/ missing" : "w/o missing", m.rt_p75, m.rt_p95,
                  m.rt_p99, m.rt_p999);
    }
  }
  std::printf("\nExpected (paper Fig. 9 / Table II): columns nearly identical\n"
              "between corrupted and clean training data.\n");
  return 0;
}
