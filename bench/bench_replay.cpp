// Production-shaped trace capture + replay throughput: how much does the
// rs::trace Recorder tax live serving, and how fast does trace::Replay()
// re-drive a capture relative to the live session it verifies?
//
// The workload is Azure-Functions-shaped: per-tenant base rates drawn from
// a heavy-tailed lognormal (a few hot functions dominate, a long tail
// idles along), modulated by a shared diurnal sinusoid with per-tenant
// phase, plus short random burst windows (4-10x for 30-90 s). Tenant
// models are clones of a few trained archetypes (Scaler::SaveState /
// ScalerBuilder::RestoreState buffers), so 100+ tenants set up in
// milliseconds instead of 100 trainings.
//
// Per worker-thread count the bench runs the same serving session three
// ways and self-checks parity before reporting:
//   1. tap off  — plain fleet serving (the control);
//   2. tap on   — the identical session with a trace::Recorder attached;
//   3. replay   — trace::Replay() of the capture, which verifies every
//                 recorded outcome/action/clock byte-for-byte as it goes.
// The tap-on run must emit byte-identical actions to the control (and to
// the first thread count's runs — the fleet parity guarantee), and the
// replay must report zero divergence; the bench aborts otherwise.
//
// Gated metrics are within-run ratios (machine-portable, see
// tools/bench_gate.py): tap_overhead (serve_on/serve_off wall time),
// replay_vs_live (replay/serve_on), and bytes_per_event (capture size over
// event count — format bloat, not speed). Absolute arrivals/sec are
// reported, gated only with --gate-absolute.
//
// Usage:
//   bench_replay [--tenants=100] [--target-arrivals=1000000]
//                [--threads=0,4] [--serve-s=3600] [--diurnal-s=3600]
//                [--plan-every=60] [--plan-interval=10] [--mc=20]
//                [--archetypes=4] [--capture-out=session.rstrace]
//                [--json=BENCH_replay.json]
//
// --capture-out writes the last run's capture to disk for inspection with
// `rs_snapshot <file>` or `rs_trace info <file>` (see README.md). The
// defaults synthesize ~1M arrivals; CI's perf-smoke invocation is in
// .github/workflows/ci.yml and the recipe in EXPERIMENTS.md.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/trace/trace.hpp"

namespace {

using namespace rs;

/// Rate-curve bin width for the synthesized intensities (also the cloned
/// archetypes' model bin width).
constexpr double kBinS = 30.0;

/// Training window of the archetype models; serving starts at this time.
constexpr double kTrainS = 3600.0;

struct Options {
  std::size_t tenants = 100;
  double target_arrivals = 1e6;  ///< Expected total; actual is Poisson.
  std::vector<std::size_t> threads = {0, 4};
  double serve_s = 3600.0;       ///< Serving window length.
  double diurnal_s = 3600.0;     ///< Compressed "day" for the sinusoid.
  double plan_every = 60.0;      ///< PlanAll batch cadence (seconds).
  double plan_interval = 10.0;   ///< Per-tenant planning interval Δ.
  std::size_t mc_samples = 20;
  std::size_t archetypes = 4;    ///< Distinct trained models to clone.
  std::string capture_out;       ///< Empty: don't persist a capture.
  std::string json_path;         ///< Empty: stdout table only.
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--tenants=", 0) == 0) {
      options.tenants = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--target-arrivals=", 0) == 0) {
      options.target_arrivals = std::stod(value());
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = bench::ParseSizeList(value());
    } else if (arg.rfind("--serve-s=", 0) == 0) {
      options.serve_s = std::stod(value());
    } else if (arg.rfind("--diurnal-s=", 0) == 0) {
      options.diurnal_s = std::stod(value());
    } else if (arg.rfind("--plan-every=", 0) == 0) {
      options.plan_every = std::stod(value());
    } else if (arg.rfind("--plan-interval=", 0) == 0) {
      options.plan_interval = std::stod(value());
    } else if (arg.rfind("--mc=", 0) == 0) {
      options.mc_samples = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--archetypes=", 0) == 0) {
      options.archetypes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--capture-out=", 0) == 0) {
      options.capture_out = value();
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = value();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  RS_CHECK(options.tenants > 0);
  RS_CHECK(options.target_arrivals > 0.0);
  RS_CHECK(!options.threads.empty());
  RS_CHECK(options.serve_s > 300.0) << "--serve-s too short for bursts";
  RS_CHECK(options.diurnal_s > 0.0);
  RS_CHECK(options.plan_every > 0.0 && options.plan_interval > 0.0);
  RS_CHECK(options.archetypes > 0 && options.archetypes <= options.tenants);
  return options;
}

/// Arrival event in the merged serving stream.
struct Event {
  double t;
  std::size_t tenant;
};

/// One tenant's piecewise-constant intensity over [0, kTrainS + serve_s):
/// zero through the archetypes' training window, then lognormal base rate
/// x diurnal sinusoid x burst windows. Deterministic per tenant index.
std::vector<double> TenantRateBins(std::size_t tenant, const Options& o) {
  stats::Rng rng(9000 + tenant);
  // Heavy tail: lognormal(mu=0, sigma=1), median 1 QPS before the global
  // rescale to --target-arrivals. The clamp keeps a single draw from
  // swallowing the whole arrival budget.
  const double base = std::clamp(std::exp(rng.NextGaussian()), 0.05, 50.0);
  const double phase = rng.NextDouble();
  struct Burst {
    double start, len, mult;
  };
  std::vector<Burst> bursts(1 + rng.NextBounded(3));
  for (auto& b : bursts) {
    b.start = rng.NextDouble() * (o.serve_s - 120.0);
    b.len = 30.0 + 60.0 * rng.NextDouble();
    b.mult = 4.0 + 6.0 * rng.NextDouble();
  }
  const auto bins = static_cast<std::size_t>((kTrainS + o.serve_s) / kBinS);
  std::vector<double> rates(bins, 0.0);
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double s = (static_cast<double>(bin) + 0.5) * kBinS - kTrainS;
    if (s < 0.0) continue;  // Quiet training window: serving starts later.
    double r = base *
               (1.0 + 0.6 * std::sin(2.0 * M_PI * (s / o.diurnal_s + phase)));
    for (const auto& b : bursts) {
      if (s >= b.start && s < b.start + b.len) r *= b.mult;
    }
    rates[bin] = r;
  }
  return rates;
}

const char* kArchetypeSpecs[] = {
    "robust_hp:target=0.9",
    "robust_rt:target=1.0",
    "robust_cost:target=2.0",
    "backup_pool:pool_size=2",
};

/// Trains one archetype model on a plain sinusoidal trace and returns its
/// Scaler::SaveState buffer; tenant i restores buffer i % archetypes.
std::string TrainArchetype(std::size_t k, const Options& options) {
  const double period = 600.0;
  std::vector<double> rates;
  for (double t = 0.5 * kBinS; t < kTrainS; t += kBinS) {
    const double phase = std::fmod(t, period) / period;
    rates.push_back(1.0 + 0.6 * std::sin(2.0 * M_PI *
                                         (phase + static_cast<double>(k) /
                                                      7.3)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kBinS);
  stats::Rng rng(500 + k);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto spec = api::ParseStrategySpec(
      kArchetypeSpecs[k % (sizeof(kArchetypeSpecs) /
                           sizeof(kArchetypeSpecs[0]))]);
  RS_CHECK(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(trace)
                    .WithBinWidth(kBinS)
                    .WithForecastHorizon(kTrainS + options.serve_s)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(options.plan_interval)
                    .WithMcSamples(options.mc_samples)
                    .Build();
  RS_CHECK(scaler.ok()) << scaler.status().ToString();
  std::ostringstream out;
  RS_CHECK(scaler->SaveState(out).ok());
  return out.str();
}

/// Registers `names.size()` tenants into `fleet`, each restored from its
/// archetype buffer (round-robin). Unbounded history retention keeps the
/// full action log for the parity cross-checks.
void PopulateFleet(api::ScalerFleet* fleet,
                   const std::vector<std::string>& names,
                   const std::vector<std::string>& buffers) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::istringstream in(buffers[i % buffers.size()]);
    auto scaler = api::ScalerBuilder::RestoreState(in);
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(fleet->Register(names[i], std::move(scaler).ValueOrDie()).ok());
    RS_CHECK(fleet->Find(names[i])
                 ->ConfigureHistoryRetention(sim::kUnboundedHistory)
                 .ok());
  }
}

struct DriveStats {
  double serve_s = 0.0;
  std::size_t plan_batches = 0;
};

/// The serving session every mode re-runs: the merged arrival stream with a
/// PlanAll batch every plan_every seconds, closed by a final batch at the
/// horizon. Identical call sequence across tap-off/tap-on runs by
/// construction, which is what makes their action logs comparable.
DriveStats Drive(api::ScalerFleet* fleet,
                 const std::vector<std::string>& names,
                 const std::vector<Event>& events, double horizon,
                 double plan_every) {
  DriveStats stats;
  double next_plan = kTrainS + plan_every;
  Stopwatch watch;
  const auto plan_batch = [&](double t) {
    for (const auto& plan : fleet->PlanAll(t)) {
      RS_CHECK(plan.status.ok())
          << plan.tenant << ": " << plan.status.ToString();
    }
    ++stats.plan_batches;
  };
  for (const auto& event : events) {
    while (next_plan <= event.t) {
      plan_batch(next_plan);
      next_plan += plan_every;
    }
    auto outcome = fleet->Observe(names[event.tenant], event.t);
    RS_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  plan_batch(horizon);
  stats.serve_s = watch.ElapsedSeconds();
  return stats;
}

struct RunResult {
  std::size_t threads = 0;
  double serve_off_s = 0.0;  ///< Control: no tap attached.
  double serve_on_s = 0.0;   ///< Same session with the Recorder attached.
  double replay_s = 0.0;     ///< trace::Replay() of the capture.
  double attach_ms = 0.0;    ///< Recorder::Attach (tenant snapshots).
  double encode_ms = 0.0;    ///< Capture::ToBytes (container encode).
  std::size_t plan_batches = 0;
  std::size_t events = 0;        ///< Capture event count.
  std::size_t capture_bytes = 0; ///< Encoded container size.
  std::vector<std::vector<sim::ScalingAction>> logs;  ///< Per tenant.
};

/// Byte-identical action-log comparison between two runs (worker counts
/// and the tap must change wall time, never actions).
void CheckParity(const RunResult& baseline, const RunResult& run,
                 const char* what) {
  RS_CHECK(baseline.logs.size() == run.logs.size());
  for (std::size_t i = 0; i < baseline.logs.size(); ++i) {
    const auto& a = baseline.logs[i];
    const auto& b = run.logs[i];
    RS_CHECK(a.size() == b.size())
        << what << ": tenant " << i << ": " << a.size() << " vs " << b.size()
        << " actions";
    for (std::size_t k = 0; k < a.size(); ++k) {
      RS_CHECK(a[k].deletions == b[k].deletions &&
               a[k].creation_times == b[k].creation_times)
          << what << ": tenant " << i << ", action " << k << " diverged";
    }
  }
}

RunResult RunOnce(const Options& options,
                  const std::vector<std::string>& names,
                  const std::vector<std::string>& buffers,
                  const std::vector<Event>& events, std::size_t threads,
                  trace::Capture* capture_out) {
  RunResult run;
  run.threads = threads;
  const double horizon = kTrainS + options.serve_s;
  Stopwatch watch;

  // 1. Control: the session with no tap.
  RunResult control;
  {
    api::ScalerFleet fleet(threads);
    PopulateFleet(&fleet, names, buffers);
    const DriveStats stats =
        Drive(&fleet, names, events, horizon, options.plan_every);
    run.serve_off_s = stats.serve_s;
    run.plan_batches = stats.plan_batches;
    for (const auto& name : names) {
      control.logs.push_back(fleet.Find(name)->ActionLog());
    }
  }
  control.threads = threads;

  // 2. The identical session with a Recorder attached.
  trace::Capture capture;
  {
    api::ScalerFleet fleet(threads);
    PopulateFleet(&fleet, names, buffers);
    trace::Recorder recorder("bench_replay synthetic session");
    watch.Reset();
    RS_CHECK(recorder.Attach(&fleet).ok());
    run.attach_ms = 1000.0 * watch.ElapsedSeconds();
    const DriveStats stats =
        Drive(&fleet, names, events, horizon, options.plan_every);
    run.serve_on_s = stats.serve_s;
    recorder.Detach();
    capture = recorder.TakeCapture();
    for (const auto& name : names) {
      run.logs.push_back(fleet.Find(name)->ActionLog());
    }
  }
  CheckParity(control, run, "tap-on vs tap-off");
  run.events = capture.events.size();

  watch.Reset();
  auto bytes = capture.ToBytes();
  RS_CHECK(bytes.ok()) << bytes.status().ToString();
  run.encode_ms = 1000.0 * watch.ElapsedSeconds();
  run.capture_bytes = bytes->size();

  // 3. Replay the capture; Replay() verifies byte parity as it re-drives.
  trace::ReplayOptions replay_options;
  replay_options.worker_threads = threads;
  watch.Reset();
  auto report = trace::Replay(capture, replay_options);
  run.replay_s = watch.ElapsedSeconds();
  RS_CHECK(report.ok()) << report.status().ToString();
  RS_CHECK(!report->diverged)
      << "replay diverged at event #" << report->divergence_event << ": "
      << report->detail;
  RS_CHECK(report->events_applied == run.events);

  if (capture_out != nullptr) *capture_out = std::move(capture);
  return run;
}

void WriteJson(const Options& options, const std::vector<RunResult>& runs,
               std::size_t total_arrivals) {
  std::ofstream out(options.json_path);
  RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.json_path;
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"replay\",\n"
      << "  \"tenants\": " << options.tenants << ",\n"
      << "  \"archetypes\": " << options.archetypes << ",\n"
      << "  \"arrivals\": " << total_arrivals << ",\n"
      << "  \"serve_window_s\": " << options.serve_s << ",\n"
      << "  \"plan_every_s\": " << options.plan_every << ",\n"
      << "  \"mc_samples\": " << options.mc_samples << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    out << "    {\"threads\": " << run.threads
        << ", \"serve_off_s\": " << run.serve_off_s
        << ", \"serve_on_s\": " << run.serve_on_s
        << ", \"replay_s\": " << run.replay_s
        << ", \"tap_overhead\": " << run.serve_on_s / run.serve_off_s
        << ", \"replay_vs_live\": " << run.replay_s / run.serve_on_s
        << ", \"arrivals_per_s\": "
        << static_cast<double>(total_arrivals) / run.serve_off_s
        << ", \"events\": " << run.events
        << ", \"capture_bytes\": " << run.capture_bytes
        << ", \"bytes_per_event\": "
        << static_cast<double>(run.capture_bytes) /
               static_cast<double>(run.events)
        << ", \"plan_batches\": " << run.plan_batches
        << ", \"attach_ms\": " << run.attach_ms
        << ", \"encode_ms\": " << run.encode_ms << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  RS_CHECK(static_cast<bool>(out)) << "write failed: " << options.json_path;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  // Synthesize the production-shaped stream: build every tenant's rate
  // curve, rescale so the expected total hits --target-arrivals, then draw
  // the NHPP arrivals. Everything is seeded per tenant index, so two runs
  // of this binary produce the same stream bit-for-bit.
  std::vector<std::vector<double>> rates;
  double expected = 0.0;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    rates.push_back(TenantRateBins(i, options));
    for (double r : rates.back()) expected += r * kBinS;
  }
  const double scale = options.target_arrivals / expected;
  std::vector<Event> events;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    for (double& r : rates[i]) r *= scale;
    auto intensity = *workload::PiecewiseConstantIntensity::Make(rates[i],
                                                                 kBinS);
    stats::Rng rng(777 + i);
    auto trace = *workload::MakeTraceFromIntensity(
        &rng, intensity, stats::DurationDistribution::Exponential(15.0));
    for (const auto& q : trace.queries()) {
      events.push_back({q.arrival_time, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.tenant < b.tenant;
  });

  Stopwatch train_watch;
  std::vector<std::string> buffers;
  for (std::size_t k = 0; k < options.archetypes; ++k) {
    buffers.push_back(TrainArchetype(k, options));
  }
  std::vector<std::string> names;
  for (std::size_t i = 0; i < options.tenants; ++i) {
    names.push_back("fn-" + std::to_string(i));
  }
  std::printf(
      "replay: %zu tenants (%zu archetypes, trained in %.2f s), "
      "%zu arrivals over %.0f s serving (target %.0f), PlanAll every "
      "%.0f s, R=%zu\n\n",
      options.tenants, options.archetypes, train_watch.ElapsedSeconds(),
      events.size(), options.serve_s, options.target_arrivals,
      options.plan_every, options.mc_samples);

  std::vector<RunResult> runs;
  trace::Capture last_capture;
  std::printf("%8s %12s %12s %8s %10s %8s %12s %10s\n", "threads",
              "serve_off_s", "serve_on_s", "tap", "replay_s", "r/live",
              "capture_MB", "B/event");
  for (std::size_t threads : options.threads) {
    runs.push_back(RunOnce(options, names, buffers, events, threads,
                           &last_capture));
    const auto& run = runs.back();
    CheckParity(runs.front(), run, "across thread counts");
    std::printf("%8zu %12.3f %12.3f %7.3fx %10.3f %7.3fx %12.2f %10.1f\n",
                run.threads, run.serve_off_s, run.serve_on_s,
                run.serve_on_s / run.serve_off_s, run.replay_s,
                run.replay_s / run.serve_on_s,
                static_cast<double>(run.capture_bytes) / 1e6,
                static_cast<double>(run.capture_bytes) /
                    static_cast<double>(run.events));
  }

  if (!options.capture_out.empty()) {
    std::ofstream out(options.capture_out, std::ios::binary);
    RS_CHECK(static_cast<bool>(out)) << "cannot open " << options.capture_out;
    RS_CHECK(last_capture.Save(out).ok());
    std::printf("\nwrote capture %s\n", options.capture_out.c_str());
  }
  if (!options.json_path.empty()) {
    WriteJson(options, runs, events.size());
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
